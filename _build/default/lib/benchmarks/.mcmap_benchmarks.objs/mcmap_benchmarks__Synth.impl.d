lib/benchmarks/synth.ml: Array Benchmark Builder Format List Mcmap_model Mcmap_util Platforms
