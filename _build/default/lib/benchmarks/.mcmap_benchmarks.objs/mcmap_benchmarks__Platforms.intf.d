lib/benchmarks/platforms.mli: Mcmap_model
