lib/benchmarks/builder.ml: Array List Mcmap_model
