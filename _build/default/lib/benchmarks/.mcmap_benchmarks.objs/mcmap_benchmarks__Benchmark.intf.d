lib/benchmarks/benchmark.mli: Mcmap_model
