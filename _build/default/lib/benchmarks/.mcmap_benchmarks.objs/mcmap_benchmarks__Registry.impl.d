lib/benchmarks/registry.ml: Cruise Dt List Option Synth
