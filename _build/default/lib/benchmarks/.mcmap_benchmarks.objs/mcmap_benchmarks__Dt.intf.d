lib/benchmarks/dt.mli: Benchmark
