lib/benchmarks/synth.mli: Benchmark Mcmap_model
