lib/benchmarks/benchmark.ml: Mcmap_model
