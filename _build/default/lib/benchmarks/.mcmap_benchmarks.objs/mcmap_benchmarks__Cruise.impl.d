lib/benchmarks/cruise.ml: Benchmark Builder List Mcmap_hardening Mcmap_model Platforms
