lib/benchmarks/sampler.mli: Mcmap_hardening Mcmap_model
