lib/benchmarks/platforms.ml: Mcmap_model
