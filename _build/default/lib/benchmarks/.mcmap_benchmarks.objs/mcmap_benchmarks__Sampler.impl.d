lib/benchmarks/sampler.ml: Array List Mcmap_hardening Mcmap_model Mcmap_util
