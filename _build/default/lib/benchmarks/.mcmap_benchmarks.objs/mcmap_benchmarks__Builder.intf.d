lib/benchmarks/builder.mli: Mcmap_model
