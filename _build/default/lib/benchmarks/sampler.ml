module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Prng = Mcmap_util.Prng

(* [n] pairwise distinct processors, the first being the primary. *)
let distinct_procs rng arch n =
  let ids = Array.init (Arch.n_procs arch) (fun i -> i) in
  Prng.shuffle rng ids;
  Array.sub ids 0 n

let balanced_plan ~seed ?(drop_all = true) arch apps =
  let rng = Prng.create seed in
  let n_procs = Arch.n_procs arch in
  let load = Array.make n_procs 0. in
  let least_loaded () =
    let best = ref 0 in
    for p = 1 to n_procs - 1 do
      if load.(p) < load.(!best) then best := p
    done;
    !best in
  let decisions =
    Array.init (Appset.n_graphs apps) (fun gi ->
        let g = Appset.graph apps gi in
        let critical = not (Graph.is_droppable g) in
        let period = float_of_int g.Graph.period in
        let home = ref (least_loaded ()) in
        Array.init (Graph.n_tasks g) (fun ti ->
            let task = Graph.task g ti in
            let technique =
              if not critical then Technique.No_hardening
              else begin
                let dice = Prng.float rng 1. in
                if dice < 0.75 || n_procs < 3 then
                  Technique.re_execution 1
                else if dice < 0.9 then Technique.active_replication 3
                else Technique.passive_replication 1
              end in
            let demand p =
              let cycles =
                match technique with
                | Technique.Re_execution k ->
                  (task.Mcmap_model.Task.wcet
                   + task.Mcmap_model.Task.detection_overhead)
                  * (k + 1)
                | Technique.Checkpointing (segments, k) ->
                  Technique.wcet_after_checkpointing
                    ~wcet:task.Mcmap_model.Task.wcet
                    ~detection:task.Mcmap_model.Task.detection_overhead
                    ~segments ~k
                | Technique.No_hardening | Technique.Active_replication _
                | Technique.Passive_replication _ ->
                  task.Mcmap_model.Task.wcet in
              float_of_int cycles
              *. (Arch.proc arch p).Mcmap_model.Proc.speed /. period in
            if load.(!home) +. demand !home > 0.75 then
              home := least_loaded ();
            let primary = !home in
            load.(primary) <- load.(primary) +. demand primary;
            let extras = Technique.replica_count technique - 1 in
            if extras > 0 then begin
              let others =
                Array.of_list
                  (List.filter (fun p -> p <> primary)
                     (List.init n_procs (fun p -> p))) in
              Prng.shuffle rng others;
              { Plan.technique; primary_proc = primary;
                replica_procs = Array.sub others 0 extras;
                voter_proc = primary }
            end
            else
              { Plan.technique; primary_proc = primary;
                replica_procs = [||]; voter_proc = primary }))
  in
  let dropped =
    Array.init (Appset.n_graphs apps) (fun gi ->
        drop_all && Graph.is_droppable (Appset.graph apps gi)) in
  Plan.make apps ~decisions ~dropped

let plan ~seed ?(drop_all = true) ?(harden_critical = true) arch apps =
  let rng = Prng.create seed in
  let n_procs = Arch.n_procs arch in
  let decide gi _ti =
    let g = Appset.graph apps gi in
    let critical = not (Graph.is_droppable g) in
    let technique =
      if harden_critical && critical then begin
        let dice = Prng.float rng 1. in
        if dice < 0.55 then Technique.re_execution (Prng.int_in rng 1 2)
        else if dice < 0.7 then
          Technique.checkpointing ~segments:(Prng.int_in rng 2 4)
            ~k:(Prng.int_in rng 1 2)
        else if dice < 0.9 && n_procs >= 3 then
          Technique.active_replication 3
        else if n_procs >= 3 then Technique.passive_replication 1
        else Technique.re_execution 1
      end
      else Technique.No_hardening in
    let replicas = Technique.replica_count technique in
    if replicas > 1 then begin
      let procs = distinct_procs rng arch replicas in
      { Plan.technique; primary_proc = procs.(0);
        replica_procs = Array.sub procs 1 (replicas - 1);
        voter_proc = Prng.int rng n_procs }
    end
    else
      { Plan.technique; primary_proc = Prng.int rng n_procs;
        replica_procs = [||]; voter_proc = 0 } in
  let decisions =
    Array.init (Appset.n_graphs apps) (fun gi ->
        Array.init
          (Graph.n_tasks (Appset.graph apps gi))
          (fun ti -> decide gi ti)) in
  let dropped =
    Array.init (Appset.n_graphs apps) (fun gi ->
        drop_all && Graph.is_droppable (Appset.graph apps gi)) in
  Plan.make apps ~decisions ~dropped
