module Appset = Mcmap_model.Appset
module Criticality = Mcmap_model.Criticality

let cruise_graph () =
  Builder.graph ~name:"cruise" ~period:1000 ~deadline:900
    ~criticality:(Criticality.critical 1e-7)
    ~tasks:
      [ ("wheel_sensor", 40); (* 0 *)
        ("speed_sensor", 45); (* 1 *)
        ("switch_poll", 25); (* 2 *)
        ("signal_filter", 60); (* 3 *)
        ("speed_calc", 70); (* 4 *)
        ("control_law", 80); (* 5 *)
        ("throttle_act", 45); (* 6 *)
        ("hmi_update", 35) (* 7 *) ]
    ~edges:
      [ (0, 3, 8); (1, 3, 8); (2, 4, 4); (3, 4, 8); (4, 5, 8); (5, 6, 4);
        (5, 7, 4) ]
    ()

let brake_monitor () =
  Builder.chain ~name:"brake_monitor" ~period:500 ~deadline:480 ~msg_size:4
    ~criticality:(Criticality.critical 1e-7)
    [ ("pressure_sense", 35); ("abs_check", 50); ("brake_law", 55);
      ("brake_act", 30) ]

let infotainment () =
  Builder.chain ~name:"infotainment" ~period:1000 ~deadline:750
    ~criticality:(Criticality.droppable 3.0)
    [ ("media_fetch", 110); ("decode", 160); ("render", 125) ]

let diagnostics () =
  Builder.chain ~name:"diagnostics" ~period:1000 ~deadline:650
    ~criticality:(Criticality.droppable 2.0)
    [ ("obd_poll", 70); ("fault_scan", 115); ("log_pack", 65) ]

let telemetry () =
  Builder.chain ~name:"telemetry" ~period:500 ~deadline:380
    ~criticality:(Criticality.droppable 1.0)
    [ ("sample", 45); ("compress", 80) ]

let benchmark () =
  let apps =
    Appset.make
      [| cruise_graph (); brake_monitor (); infotainment ();
         diagnostics (); telemetry () |] in
  Benchmark.make ~name:"cruise" ~arch:(Platforms.quad ()) ~apps

let critical_graphs (b : Benchmark.t) = Appset.critical_graphs b.Benchmark.apps

(* The three hand-drawn sample mappings of the Table 2 experiment. They
   interleave the droppable applications with the critical ones on the
   same processors — the natural designer layout the paper analyses —
   with every droppable application in the dropped set. *)
let sample_plans (b : Benchmark.t) =
  let apps = b.Benchmark.apps in
  let d ?(technique = Mcmap_hardening.Technique.No_hardening)
      ?(replicas = [||]) ?voter primary =
    { Mcmap_hardening.Plan.technique; primary_proc = primary;
      replica_procs = replicas;
      voter_proc = (match voter with Some v -> v | None -> primary) } in
  let re ?(k = 1) primary =
    d ~technique:(Mcmap_hardening.Technique.re_execution k) primary in
  let active3 primary replicas voter =
    d ~technique:(Mcmap_hardening.Technique.active_replication 3)
      ~replicas ~voter primary in
  let passive1 primary replicas voter =
    d ~technique:(Mcmap_hardening.Technique.passive_replication 1)
      ~replicas ~voter primary in
  let dropped = [| false; false; true; true; true |] in
  let mapping1 =
    [| [| re 0; re 1; re 0; re 1; re 0; re 1; re 0; re 1 |];
       [| re 3; re 3; re 3; re 3 |];
       [| d 0; d 1; d 2 |];
       [| d 1; d 2; d 3 |];
       [| d 2; d 3 |] |] in
  let mapping2 =
    [| [| re 0; re 0; re 1; re 1; active3 0 [| 1; 3 |] 1; re 2; re 0;
          re 1 |];
       [| re 3; re 3; re 2; re 3 |];
       [| d 3; d 0; d 1 |];
       [| d 2; d 0; d 3 |];
       [| d 1; d 2 |] |] in
  let mapping3 =
    [| [| re 0; re 0; re 0; re ~k:2 0; re 1; re ~k:2 1; re 1; re 0 |];
       [| re 2; re 2; passive1 2 [| 3; 1 |] 2; re 2 |];
       [| d 3; d 3; d 0 |];
       [| d 3; d 1; d 2 |];
       [| d 0; d 3 |] |] in
  List.map
    (fun decisions -> Mcmap_hardening.Plan.make apps ~decisions ~dropped)
    [ mapping1; mapping2; mapping3 ]
