(** Compact construction helpers for benchmark task graphs.

    Unless given explicitly, per-task parameters are derived from the
    WCET with the ratios used across all benchmarks: [bcet = 3/5 wcet],
    detection overhead [max 1 (wcet / 10)], voting overhead
    [max 1 (wcet / 20)] — the "time unit" is one millisecond. *)

val task : ?bcet:int -> id:int -> name:string -> wcet:int -> unit ->
  Mcmap_model.Task.t
(** One task with derived overheads. *)

val graph :
  ?deadline:int ->
  name:string ->
  period:int ->
  criticality:Mcmap_model.Criticality.t ->
  tasks:(string * int) list ->
  edges:(int * int * int) list ->
  unit ->
  Mcmap_model.Graph.t
(** [graph ~name ~period ~criticality ~tasks ~edges ()] builds a task
    graph from [(task name, wcet)] pairs and [(src, dst, size)] edges. *)

val chain :
  ?deadline:int ->
  ?msg_size:int ->
  name:string ->
  period:int ->
  criticality:Mcmap_model.Criticality.t ->
  (string * int) list ->
  Mcmap_model.Graph.t
(** A linear pipeline with uniform message sizes (default 4). *)
