(** Seeded synthetic benchmark generator (paper §5: "two synthetic
    examples that are randomly generated"), in the spirit of TGFF:
    layered random DAGs with configurable size, load and criticality
    mix. *)

type spec = {
  n_graphs : int;
  tasks_lo : int;  (** minimum tasks per graph *)
  tasks_hi : int;  (** maximum tasks per graph *)
  periods : int list;  (** drawn uniformly per graph *)
  wcet_lo : int;
  wcet_hi : int;
  extra_edge_prob : float;  (** chance of extra cross-layer edges *)
  droppable_ratio : float;  (** fraction of graphs that are droppable *)
  deadline_factor : float;  (** deadline = factor * period (capped) *)
}

val default_spec : spec
(** 4 graphs of 6-10 tasks, periods 500/1000, WCETs 10-40 ms, loose
    deadlines. *)

val generate : seed:int -> spec -> Mcmap_model.Appset.t
(** Deterministic generation from the seed. At least one graph is kept
    critical regardless of [droppable_ratio]. *)

val synth1 : unit -> Benchmark.t
(** *Synth-1*: lightly loaded, loose deadlines (the paper observes almost
    no dropping-rescued solutions here). *)

val synth2 : unit -> Benchmark.t
(** *Synth-2*: heavier tasks and tighter deadlines. *)
