module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph

let task ?bcet ~id ~name ~wcet () =
  let bcet = match bcet with Some b -> b | None -> wcet * 3 / 5 in
  Task.make ~id ~name ~wcet ~bcet
    ~detection_overhead:(max 1 (wcet / 10))
    ~voting_overhead:(max 1 (wcet / 20))
    ()

let graph ?deadline ~name ~period ~criticality ~tasks ~edges () =
  let tasks =
    Array.of_list
      (List.mapi (fun id (tname, wcet) -> task ~id ~name:tname ~wcet ())
         tasks) in
  let channels =
    Array.of_list
      (List.map (fun (src, dst, size) -> Channel.make ~src ~dst ~size ())
         edges) in
  Graph.make ?deadline ~name ~tasks ~channels ~period ~criticality ()

let chain ?deadline ?(msg_size = 4) ~name ~period ~criticality stages =
  let n = List.length stages in
  let edges =
    List.init (max 0 (n - 1)) (fun i -> (i, i + 1, msg_size)) in
  graph ?deadline ~name ~period ~criticality ~tasks:stages ~edges ()
