(** Name-indexed access to all benchmarks. *)

val names : string list
(** ["cruise"; "dt-med"; "dt-large"; "synth-1"; "synth-2"]. *)

val find : string -> Benchmark.t option

val find_exn : string -> Benchmark.t
(** @raise Invalid_argument for an unknown name. *)

val all : unit -> Benchmark.t list
