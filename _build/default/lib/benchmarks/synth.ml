module Appset = Mcmap_model.Appset
module Criticality = Mcmap_model.Criticality
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Prng = Mcmap_util.Prng

type spec = {
  n_graphs : int;
  tasks_lo : int;
  tasks_hi : int;
  periods : int list;
  wcet_lo : int;
  wcet_hi : int;
  extra_edge_prob : float;
  droppable_ratio : float;
  deadline_factor : float;
}

let default_spec =
  { n_graphs = 4; tasks_lo = 6; tasks_hi = 10; periods = [ 500; 1000 ];
    wcet_lo = 5; wcet_hi = 20; extra_edge_prob = 0.15;
    droppable_ratio = 0.75; deadline_factor = 1.6 }

(* A layered DAG: tasks are spread over ceil(sqrt n) layers; every
   non-source task has a parent in the previous layer, plus optional
   extra forward edges. *)
let random_graph rng spec ~index ~droppable =
  let n = Prng.int_in rng spec.tasks_lo spec.tasks_hi in
  let n_layers = max 2 (int_of_float (sqrt (float_of_int n)) + 1) in
  let layer_of = Array.init n (fun i -> i * n_layers / n) in
  let tasks =
    List.init n (fun i ->
        (Format.asprintf "s%d_t%d" index i,
         Prng.int_in rng spec.wcet_lo spec.wcet_hi)) in
  let edges = ref [] in
  for v = 0 to n - 1 do
    if layer_of.(v) > 0 then begin
      (* mandatory parent in the previous layer *)
      let candidates = ref [] in
      for u = 0 to n - 1 do
        if layer_of.(u) = layer_of.(v) - 1 then candidates := u :: !candidates
      done;
      let parent = Prng.pick_list rng !candidates in
      edges := (parent, v, Prng.int_in rng 2 8) :: !edges;
      (* optional extra forward edges from any earlier layer *)
      for u = 0 to n - 1 do
        if layer_of.(u) < layer_of.(v) && u <> parent
           && Prng.bernoulli rng spec.extra_edge_prob then
          edges := (u, v, Prng.int_in rng 2 8) :: !edges
      done
    end
  done;
  let period = Prng.pick_list rng spec.periods in
  let deadline =
    max 1 (int_of_float (spec.deadline_factor *. float_of_int period)) in
  let criticality =
    if droppable then
      Criticality.droppable (float_of_int (Prng.int_in rng 1 5))
    else Criticality.critical 1e-7 in
  let tasks_arr =
    Array.of_list
      (List.mapi
         (fun id (name, wcet) -> Builder.task ~id ~name ~wcet ())
         tasks) in
  let channels =
    Array.of_list
      (List.rev_map
         (fun (src, dst, size) -> Channel.make ~src ~dst ~size ())
         !edges) in
  Graph.make ~deadline
    ~name:(Format.asprintf "synth%d" index)
    ~tasks:tasks_arr ~channels ~period ~criticality ()

let generate ~seed spec =
  let rng = Prng.create seed in
  let graphs =
    Array.init spec.n_graphs (fun index ->
        let droppable =
          index > 0 && Prng.bernoulli rng spec.droppable_ratio in
        random_graph rng spec ~index ~droppable) in
  Appset.make graphs

let synth1 () =
  let apps = generate ~seed:11 default_spec in
  Benchmark.make ~name:"synth-1" ~arch:(Platforms.quad ()) ~apps

let synth2 () =
  let spec =
    { default_spec with n_graphs = 5; tasks_lo = 8; tasks_hi = 12;
      wcet_lo = 8; wcet_hi = 20; droppable_ratio = 0.4;
      deadline_factor = 1.1 } in
  let apps = generate ~seed:23 spec in
  Benchmark.make ~name:"synth-2" ~arch:(Platforms.quad ()) ~apps
