(** Deterministic seeded plan construction — used for sample mappings in
    experiments and as a random-candidate source in tests. *)

val plan :
  seed:int ->
  ?drop_all:bool ->
  ?harden_critical:bool ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t
(** A placement-feasible random plan: every task bound to a random
    processor; when [harden_critical] (default true), tasks of critical
    graphs draw a hardening technique (re-execution with k in 1-2 with
    probability 0.7, triple active replication 0.2, passive replication
    with one spare 0.1) with replicas on pairwise distinct processors.
    [drop_all] (default true) puts every droppable graph in the dropped
    set. *)

val balanced_plan :
  seed:int ->
  ?drop_all:bool ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t
(** A graph-sticky, load-balanced plan of the kind a designer would draw
    by hand: each graph's tasks stay on one processor (spilling to the
    next least-loaded one when full), critical tasks are hardened —
    mostly with single re-execution, occasionally (seed-dependent) with
    triple active replication or one-spare passive replication on
    distinct processors. Used as the "sample mappings" of the Table 2
    experiment. *)
