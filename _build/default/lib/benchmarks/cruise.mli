(** The *Cruise* benchmark (paper §5, after Kandasamy et al. [20]): a
    cruise-control application and a brake-monitor application — the two
    critical graphs whose WCRTs Table 2 reports — plus three synthetic
    droppable applications added per the paper to raise complexity
    (infotainment, diagnostics, telemetry). Runs on {!Platforms.quad}.

    Time unit: 1 ms. *)

val benchmark : unit -> Benchmark.t

val critical_graphs : Benchmark.t -> int list
(** Indices of the two critical applications in the set. *)

val sample_plans : Benchmark.t -> Mcmap_hardening.Plan.t list
(** The "three sample mappings" of Table 2: deterministic seeded plans
    with hardening on the critical applications and every droppable
    graph in the dropped set. *)
