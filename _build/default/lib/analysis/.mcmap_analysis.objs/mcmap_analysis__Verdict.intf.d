lib/analysis/verdict.mli: Format
