lib/analysis/naive.mli: Mcmap_sched Verdict
