lib/analysis/wcrt.mli: Format Mcmap_sched Verdict
