lib/analysis/verdict.ml: Format Stdlib
