lib/analysis/naive.ml: Array Mcmap_hardening Mcmap_sched Verdict
