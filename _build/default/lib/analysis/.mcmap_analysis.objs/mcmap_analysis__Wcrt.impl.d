lib/analysis/wcrt.ml: Array Format List Mcmap_hardening Mcmap_model Mcmap_sched Verdict
