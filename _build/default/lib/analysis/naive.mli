(** The "Naive" baseline of paper §5.1/§3: a single static analysis that
    models task dropping by giving every dropped-set job the execution
    range [[0, wcet]] (zero best case), passive spares [[0, wcet]], and
    re-executables their full Eq. (1) worst case — ignoring the
    chronology of the state transition. Safe but pessimistic. *)

val exec : Mcmap_sched.Job.t -> int * int
(** The per-job bounds described above. *)

val analyze :
  ?max_iterations:int -> Mcmap_sched.Bounds.ctx -> Verdict.t array
(** Per source graph: the Naive WCRT bound. *)
