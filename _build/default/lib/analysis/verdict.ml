type t = Finite of int | Unbounded

let max a b =
  match a, b with
  | Unbounded, _ | _, Unbounded -> Unbounded
  | Finite x, Finite y -> Finite (Stdlib.max x y)

let of_option = function Some w -> Finite w | None -> Unbounded

let to_float = function Finite w -> float_of_int w | Unbounded -> infinity

let is_finite = function Finite _ -> true | Unbounded -> false

let within v deadline =
  match v with Finite w -> w <= deadline | Unbounded -> false

let pp ppf = function
  | Finite w -> Format.fprintf ppf "%d" w
  | Unbounded -> Format.pp_print_string ppf "unbounded"
