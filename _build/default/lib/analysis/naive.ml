module Bounds = Mcmap_sched.Bounds
module Jobset = Mcmap_sched.Jobset
module Job = Mcmap_sched.Job
module Happ = Mcmap_hardening.Happ

let exec (w : Job.t) =
  (* The paper's Naive zeroes the bcet of every droppable task (whether
     or not it ends up in the dropped set) and keeps the full Eq. (1)
     worst case everywhere. *)
  let lower = if w.Job.droppable || w.Job.passive then 0 else w.Job.bcet in
  let upper = w.Job.critical_wcet in
  (lower, upper)

let analyze ?max_iterations ctx =
  let js = Bounds.jobset ctx in
  let n_graphs = Happ.n_graphs js.Jobset.happ in
  let result = Bounds.analyze ?max_iterations ctx ~exec in
  Array.init n_graphs (fun graph ->
      Verdict.of_option (Bounds.graph_wcrt js result ~graph))
