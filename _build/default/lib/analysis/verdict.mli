(** Worst-case response-time verdicts. *)

type t =
  | Finite of int  (** safe upper bound on the response time *)
  | Unbounded
      (** the backend could not certify a bound (fixed point diverged) *)

val max : t -> t -> t

val of_option : int option -> t

val to_float : t -> float
(** [Finite w] to [float w]; [Unbounded] to [infinity]. *)

val is_finite : t -> bool

val within : t -> int -> bool
(** [within v deadline] — the verdict certifies completion by the
    deadline. *)

val pp : Format.formatter -> t -> unit
