module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = { mutable data : Elt.t array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let is_empty h = h.len = 0

  let size h = h.len

  let grow h x =
    let cap = Array.length h.data in
    if h.len = cap then begin
      let ncap = max 8 (2 * cap) in
      let ndata = Array.make ncap x in
      Array.blit h.data 0 ndata 0 h.len;
      h.data <- ndata
    end

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && Elt.compare h.data.(l) h.data.(!smallest) < 0 then
      smallest := l;
    if r < h.len && Elt.compare h.data.(r) h.data.(!smallest) < 0 then
      smallest := r;
    if !smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      sift_down h !smallest
    end

  let add h x =
    grow h x;
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let peek h = if h.len = 0 then None else Some h.data.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        sift_down h 0
      end;
      Some top
    end

  let pop_exn h =
    match pop h with
    | Some x -> x
    | None -> invalid_arg "Heap.pop_exn: empty heap"

  let to_list h =
    let rec loop i acc =
      if i < 0 then acc else loop (i - 1) (h.data.(i) :: acc) in
    loop (h.len - 1) []

  let clear h = h.len <- 0

  let filter_in_place h pred =
    let kept = List.filter pred (to_list h) in
    clear h;
    List.iter (add h) kept
end
