(** Small exact-arithmetic helpers used throughout the analysis. *)

val gcd : int -> int -> int
(** Greatest common divisor; [gcd 0 0 = 0]. Arguments must be
    non-negative. *)

val lcm : int -> int -> int
(** Least common multiple; [lcm x 0 = 0]. *)

val lcm_list : int list -> int
(** LCM of a list; [lcm_list \[\] = 1]. Used for hyperperiods. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] for positive [b] and non-negative
    [a]. *)

val clamp : lo:int -> hi:int -> int -> int
(** Restrict a value to [\[lo, hi\]]. *)

val clamp_f : lo:float -> hi:float -> float -> float
(** Restrict a float to [\[lo, hi\]]. *)

val sum_by : ('a -> int) -> 'a list -> int
(** [sum_by f l] is the integer sum of [f] over [l]. *)

val sum_by_f : ('a -> float) -> 'a list -> float
(** [sum_by_f f l] is the float sum of [f] over [l]. *)
