lib/util/texttable.mli:
