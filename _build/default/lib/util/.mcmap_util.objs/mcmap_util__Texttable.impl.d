lib/util/texttable.ml: Array Buffer List String
