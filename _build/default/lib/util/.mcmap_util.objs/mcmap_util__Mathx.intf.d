lib/util/mathx.mli:
