lib/util/heap.mli:
