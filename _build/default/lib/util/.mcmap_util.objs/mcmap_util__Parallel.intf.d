lib/util/parallel.mli:
