lib/util/pareto.mli:
