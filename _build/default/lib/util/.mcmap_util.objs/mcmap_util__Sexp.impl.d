lib/util/sexp.ml: Buffer Format List Mathx String
