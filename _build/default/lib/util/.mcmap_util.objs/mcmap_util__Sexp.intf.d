lib/util/sexp.mli:
