lib/util/prng.mli:
