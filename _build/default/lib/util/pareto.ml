let dominates a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Pareto.dominates: arity mismatch";
  let no_worse = ref true and better = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then no_worse := false;
    if a.(i) < b.(i) then better := true
  done;
  !no_worse && !better

let non_dominated entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if keep.(i) then
      for j = 0 to n - 1 do
        if i <> j && keep.(i) then begin
          let _, oi = arr.(i) and _, oj = arr.(j) in
          if dominates oj oi then keep.(i) <- false
          else if oi = oj && j < i then keep.(i) <- false
        end
      done
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := arr.(i) :: !out
  done;
  !out

let front_2d entries =
  let front = non_dominated entries in
  List.sort (fun (_, a) (_, b) -> compare a.(0) b.(0)) front

let crowding_sort entries =
  match entries with
  | [] | [ _ ] -> entries
  | _ :: _ :: _ ->
    let arr = Array.of_list entries in
    let n = Array.length arr in
    let m = Array.length (snd arr.(0)) in
    let dist = Array.make n 0. in
    for obj = 0 to m - 1 do
      let idx = Array.init n (fun i -> i) in
      Array.sort (fun i j -> compare (snd arr.(i)).(obj) (snd arr.(j)).(obj))
        idx;
      let lo = (snd arr.(idx.(0))).(obj)
      and hi = (snd arr.(idx.(n - 1))).(obj) in
      let range = hi -. lo in
      dist.(idx.(0)) <- infinity;
      dist.(idx.(n - 1)) <- infinity;
      if range > 0. then
        for k = 1 to n - 2 do
          let prev = (snd arr.(idx.(k - 1))).(obj)
          and next = (snd arr.(idx.(k + 1))).(obj) in
          dist.(idx.(k)) <- dist.(idx.(k)) +. ((next -. prev) /. range)
        done
    done;
    let order = Array.init n (fun i -> i) in
    Array.sort (fun i j -> compare dist.(j) dist.(i)) order;
    Array.to_list (Array.map (fun i -> arr.(i)) order)

let hypervolume_2d ~reference entries =
  let rx, ry = reference in
  let front =
    front_2d entries
    |> List.filter_map (fun (_, o) ->
           if o.(0) >= rx || o.(1) >= ry then None
           else Some (o.(0), o.(1))) in
  (* front is sorted by the first objective ascending, hence the second
     objective descends along it *)
  let rec area acc = function
    | [] -> acc
    | (x, y) :: rest ->
      let next_x = match rest with (x', _) :: _ -> x' | [] -> rx in
      area (acc +. ((next_x -. x) *. (ry -. y))) rest in
  area 0. front
