(** Minimal plain-text table rendering for experiment reports. *)

type t

val create : header:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val render : t -> string
(** ASCII rendering with aligned columns and a header separator. *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
