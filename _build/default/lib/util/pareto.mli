(** Pareto dominance over minimisation objective vectors.

    Every objective is minimised; callers negate "maximise" objectives
    (e.g. service) before entering this module. *)

val dominates : float array -> float array -> bool
(** [dominates a b] iff [a] is no worse in every objective and strictly
    better in at least one. Vectors must have equal length. *)

val non_dominated : ('a * float array) list -> ('a * float array) list
(** Keep exactly the non-dominated entries (first occurrence wins among
    duplicates of the same vector). Order of survivors is preserved. *)

val front_2d : ('a * float array) list -> ('a * float array) list
(** Non-dominated subset sorted by the first objective ascending; input
    vectors must be 2-dimensional. *)

val crowding_sort : ('a * float array) list -> ('a * float array) list
(** Sort by descending crowding distance (NSGA-II style); useful for
    truncating fronts while keeping spread. *)

val hypervolume_2d :
  reference:float * float -> ('a * float array) list -> float
(** Hypervolume (area) dominated by the 2-objective minimisation front
    within the box bounded by the reference point (which should be worse
    than every point in both objectives). Points outside the box are
    clamped; a larger value means a better front. *)
