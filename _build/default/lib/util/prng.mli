(** Deterministic pseudo-random number generation.

    All stochastic parts of mcmap (synthetic benchmark generation,
    Monte-Carlo fault profiles, genetic operators) draw from this splittable
    SplitMix64 generator so that a single seed reproduces a whole experiment
    bit-for-bit, independently of evaluation order. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; used to give sub-systems their own streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples an exponential distribution with the given
    rate (mean [1. /. rate]). [rate] must be positive. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
