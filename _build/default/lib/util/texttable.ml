type t = { header : string array; mutable rows : string array list }

let create ~header = { header = Array.of_list header; rows = [] }

let add_row t cells =
  let width = Array.length t.header in
  if List.length cells > width then
    invalid_arg "Texttable.add_row: more cells than columns";
  let row = Array.make width "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let width = Array.length t.header in
  let col_width i =
    List.fold_left
      (fun acc row -> max acc (String.length row.(i)))
      (String.length t.header.(i))
      rows in
  let widths = Array.init width col_width in
  let buf = Buffer.create 256 in
  let pad s w =
    let s = s ^ String.make (max 0 (w - String.length s)) ' ' in
    s in
  let emit_row row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad cell widths.(i)))
      row;
    Buffer.add_char buf '\n' in
  emit_row t.header;
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
