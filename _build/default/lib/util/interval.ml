type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = { lo = x; hi = x }

let length t = t.hi - t.lo

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let contains t x = t.lo <= x && x <= t.hi

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let shift t d = { lo = t.lo + d; hi = t.hi + d }

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let pp ppf t = Format.fprintf ppf "[%d, %d]" t.lo t.hi
