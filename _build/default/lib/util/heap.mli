(** Imperative binary min-heap, used by the discrete-event simulator and the
    scheduling backend. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val create : unit -> t

  val is_empty : t -> bool

  val size : t -> int

  val add : t -> Elt.t -> unit

  val peek : t -> Elt.t option

  val pop : t -> Elt.t option
  (** Remove and return the minimum element, if any. *)

  val pop_exn : t -> Elt.t
  (** @raise Invalid_argument on an empty heap. *)

  val to_list : t -> Elt.t list
  (** Elements in unspecified order; the heap is unchanged. *)

  val clear : t -> unit

  val filter_in_place : t -> (Elt.t -> bool) -> unit
  (** Keep only elements satisfying the predicate (re-heapifies). *)
end
