let rec gcd a b =
  assert (a >= 0 && b >= 0);
  if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b

let lcm_list l = List.fold_left lcm 1 l

let ceil_div a b =
  assert (b > 0 && a >= 0);
  (a + b - 1) / b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let clamp_f ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

let sum_by_f f l = List.fold_left (fun acc x -> acc +. f x) 0. l
