let map_array ~domains f arr =
  if domains < 1 then invalid_arg "Parallel.map_array: domains < 1";
  let n = Array.length arr in
  if domains = 1 || n <= 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    let stripe d () =
      let i = ref d in
      while !i < n do
        out.(!i) <- Some (f arr.(!i));
        i := !i + domains
      done in
    let workers =
      List.init (min domains n - 1) (fun d -> Domain.spawn (stripe (d + 1)))
    in
    stripe 0 ();
    List.iter Domain.join workers;
    Array.map
      (function
        | Some x -> x
        | None -> assert false)
      out
  end

let recommended_domains () = min 8 (Domain.recommended_domain_count ())
