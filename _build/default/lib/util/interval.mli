(** Closed integer time intervals [\[lo, hi\]].

    The scheduling backend reasons about earliest/latest start and finish
    windows; overlap tests between such windows decide interference. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi] requires [lo <= hi]. *)

val point : int -> t
(** Degenerate interval [\[x, x\]]. *)

val length : t -> int
(** [hi - lo]. *)

val overlaps : t -> t -> bool
(** Closed-interval intersection test. *)

val contains : t -> int -> bool

val hull : t -> t -> t
(** Smallest interval containing both. *)

val shift : t -> int -> t
(** Translate both bounds. *)

val inter : t -> t -> t option
(** Intersection, if non-empty. *)

val pp : Format.formatter -> t -> unit
