type t = {
  procs : Proc.t array;
  bus_bandwidth : int;
  bus_latency : int;
}

let make ?(bus_bandwidth = 1) ?(bus_latency = 0) procs =
  if Array.length procs = 0 then invalid_arg "Arch.make: no processors";
  if bus_bandwidth <= 0 then invalid_arg "Arch.make: bandwidth must be > 0";
  if bus_latency < 0 then invalid_arg "Arch.make: negative latency";
  Array.iteri
    (fun i (p : Proc.t) ->
      if p.Proc.id <> i then
        invalid_arg "Arch.make: processor id must equal its index")
    procs;
  { procs; bus_bandwidth; bus_latency }

let n_procs t = Array.length t.procs

let proc t i =
  if i < 0 || i >= Array.length t.procs then
    invalid_arg "Arch.proc: processor id out of range";
  t.procs.(i)

let comm_delay t ~size ~src_proc ~dst_proc =
  if src_proc = dst_proc then 0
  else if size <= 0 then t.bus_latency
  else t.bus_latency + Mcmap_util.Mathx.ceil_div size t.bus_bandwidth

let pp ppf t =
  Format.fprintf ppf "@[<v>arch: %d procs, bw=%d, lat=%d@," (n_procs t)
    t.bus_bandwidth t.bus_latency;
  Array.iter (fun p -> Format.fprintf ppf "  %a@," Proc.pp p) t.procs;
  Format.fprintf ppf "@]"
