type t = { src : int; dst : int; size : int }

let make ?(size = 0) ~src ~dst () =
  if src = dst then invalid_arg "Channel.make: self-loop";
  if size < 0 then invalid_arg "Channel.make: negative size";
  { src; dst; size }

let pp ppf t = Format.fprintf ppf "%d->%d(%d)" t.src t.dst t.size
