type t = {
  name : string;
  tasks : Task.t array;
  channels : Channel.t array;
  period : int;
  deadline : int;
  criticality : Criticality.t;
}

let n_tasks t = Array.length t.tasks

let task t i = t.tasks.(i)

let preds t v =
  Array.fold_right
    (fun (c : Channel.t) acc ->
      if c.Channel.dst = v then (c.Channel.src, c) :: acc else acc)
    t.channels []

let succs t v =
  Array.fold_right
    (fun (c : Channel.t) acc ->
      if c.Channel.src = v then (c.Channel.dst, c) :: acc else acc)
    t.channels []

let in_degree t =
  let deg = Array.make (n_tasks t) 0 in
  Array.iter (fun (c : Channel.t) -> deg.(c.Channel.dst) <- deg.(c.Channel.dst) + 1)
    t.channels;
  deg

let topological_order t =
  (* Kahn's algorithm with a sorted ready list for determinism. *)
  let n = n_tasks t in
  let deg = in_degree t in
  let ready = ref [] in
  for v = n - 1 downto 0 do
    if deg.(v) = 0 then ready := v :: !ready
  done;
  let order = Array.make n (-1) in
  let rec loop i = function
    | [] -> i
    | v :: rest ->
      order.(i) <- v;
      let rest =
        List.fold_left
          (fun acc (w, _) ->
            deg.(w) <- deg.(w) - 1;
            if deg.(w) = 0 then
              List.sort compare (w :: acc)
            else acc)
          rest (succs t v) in
      loop (i + 1) rest in
  let filled = loop 0 !ready in
  if filled <> n then invalid_arg "Graph: cycle detected";
  order

let validate t =
  let n = n_tasks t in
  if n = 0 then invalid_arg "Graph: no tasks";
  Array.iteri
    (fun i (task : Task.t) ->
      if task.Task.id <> i then
        invalid_arg "Graph: task id must equal its index")
    t.tasks;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (c : Channel.t) ->
      if c.Channel.src < 0 || c.Channel.src >= n || c.Channel.dst < 0
         || c.Channel.dst >= n then
        invalid_arg "Graph: channel endpoint out of range";
      let key = (c.Channel.src, c.Channel.dst) in
      if Hashtbl.mem seen key then invalid_arg "Graph: duplicate channel";
      Hashtbl.add seen key ())
    t.channels;
  if t.period <= 0 then invalid_arg "Graph: period must be positive";
  if t.deadline <= 0 then invalid_arg "Graph: deadline must be positive";
  ignore (topological_order t)

let make ?deadline ~name ~tasks ~channels ~period ~criticality () =
  let deadline = match deadline with Some d -> d | None -> period in
  let t = { name; tasks; channels; period; deadline; criticality } in
  validate t;
  t

let sources t =
  let deg = in_degree t in
  let acc = ref [] in
  for v = n_tasks t - 1 downto 0 do
    if deg.(v) = 0 then acc := v :: !acc
  done;
  !acc

let sinks t =
  let out = Array.make (n_tasks t) 0 in
  Array.iter (fun (c : Channel.t) -> out.(c.Channel.src) <- out.(c.Channel.src) + 1)
    t.channels;
  let acc = ref [] in
  for v = n_tasks t - 1 downto 0 do
    if out.(v) = 0 then acc := v :: !acc
  done;
  !acc

let depth t =
  let d = Array.make (n_tasks t) 0 in
  Array.iter
    (fun v ->
      List.iter (fun (p, _) -> d.(v) <- max d.(v) (d.(p) + 1)) (preds t v))
    (topological_order t);
  d

let is_droppable t = Criticality.is_droppable t.criticality

let total_wcet t =
  Array.fold_left (fun acc (task : Task.t) -> acc + task.Task.wcet) 0 t.tasks

let pp ppf t =
  Format.fprintf ppf "@[<v>graph %s: pr=%d dl=%d %a, %d tasks, %d channels@]"
    t.name t.period t.deadline Criticality.pp t.criticality (n_tasks t)
    (Array.length t.channels)
