type t = Critical of float | Droppable of float

let critical f =
  if f <= 0. || f > 1. then
    invalid_arg "Criticality.critical: rate must be in (0, 1]";
  Critical f

let droppable sv =
  if sv < 0. then invalid_arg "Criticality.droppable: negative service";
  Droppable sv

let is_droppable = function Critical _ -> false | Droppable _ -> true

let service = function Critical _ -> infinity | Droppable sv -> sv

let max_failure_rate = function
  | Critical f -> Some f
  | Droppable _ -> None

let pp ppf = function
  | Critical f -> Format.fprintf ppf "critical(f=%.2e)" f
  | Droppable sv -> Format.fprintf ppf "droppable(sv=%.2f)" sv
