(** A channel [e = (src_e, dst_e)] of a task graph: a data dependency whose
    each transmission carries [s_e] payload units over the interconnect. *)

type t = { src : int; dst : int; size : int }

val make : ?size:int -> src:int -> dst:int -> unit -> t
(** Default size 0 (pure precedence).
    @raise Invalid_argument on a self-loop or negative size. *)

val pp : Format.formatter -> t -> unit
