type task_ref = { graph : int; task : int }

type t = { graphs : Graph.t array }

let make graphs =
  if Array.length graphs = 0 then invalid_arg "Appset.make: empty set";
  let names = Hashtbl.create 8 in
  Array.iter
    (fun (g : Graph.t) ->
      if Hashtbl.mem names g.Graph.name then
        invalid_arg "Appset.make: duplicate graph name";
      Hashtbl.add names g.Graph.name ())
    graphs;
  { graphs }

let n_graphs t = Array.length t.graphs

let graph t i = t.graphs.(i)

let graph_index t name =
  let rec find i =
    if i >= n_graphs t then raise Not_found
    else if (graph t i).Graph.name = name then i
    else find (i + 1) in
  find 0

let hyperperiod t =
  Mcmap_util.Mathx.lcm_list
    (Array.to_list (Array.map (fun (g : Graph.t) -> g.Graph.period) t.graphs))

let total_tasks t =
  Array.fold_left (fun acc g -> acc + Graph.n_tasks g) 0 t.graphs

let all_task_refs t =
  let acc = ref [] in
  for gi = n_graphs t - 1 downto 0 do
    for ti = Graph.n_tasks (graph t gi) - 1 downto 0 do
      acc := { graph = gi; task = ti } :: !acc
    done
  done;
  !acc

let task t r = Graph.task (graph t r.graph) r.task

let filter_graphs t keep =
  let acc = ref [] in
  for gi = n_graphs t - 1 downto 0 do
    if keep (graph t gi) then acc := gi :: !acc
  done;
  !acc

let droppable_graphs t = filter_graphs t Graph.is_droppable

let critical_graphs t = filter_graphs t (fun g -> not (Graph.is_droppable g))

let total_service t =
  List.fold_left
    (fun acc gi -> acc +. Criticality.service (graph t gi).Graph.criticality)
    0. (droppable_graphs t)

let pp ppf t =
  Format.fprintf ppf "@[<v>appset (%d graphs, hyperperiod %d):@," (n_graphs t)
    (hyperperiod t);
  Array.iter (fun g -> Format.fprintf ppf "  %a@," Graph.pp g) t.graphs;
  Format.fprintf ppf "@]"

let pp_task_ref ppf r = Format.fprintf ppf "g%d.t%d" r.graph r.task
