(** Criticality attributes of a task graph (paper §2.1).

    Non-droppable graphs carry a reliability constraint [f_t in (0, 1]]:
    the maximum allowed failures per time unit (the lower, the more
    critical). Droppable graphs have no reliability constraint (the paper
    encodes this as [f_t = -1]) and instead carry a service value [sv_t];
    the quality of service of a configuration is the sum of [sv] over
    non-dropped graphs. *)

type t =
  | Critical of float
      (** [Critical f] — non-droppable, at most [f] failures per time
          unit. *)
  | Droppable of float
      (** [Droppable sv] — may be dropped in the critical system state;
          contributes [sv] to the quality of service while alive. *)

val critical : float -> t
(** @raise Invalid_argument unless the rate is in (0, 1]. *)

val droppable : float -> t
(** @raise Invalid_argument on a negative service value. *)

val is_droppable : t -> bool

val service : t -> float
(** [sv_t]; [infinity] for critical graphs (they are never dropped). *)

val max_failure_rate : t -> float option
(** [f_t] for critical graphs, [None] for droppable ones. *)

val pp : Format.formatter -> t -> unit
