type t = {
  id : int;
  name : string;
  bcet : int;
  wcet : int;
  voting_overhead : int;
  detection_overhead : int;
}

let make ?bcet ?(voting_overhead = 0) ?(detection_overhead = 0) ~id ~name
    ~wcet () =
  let bcet = match bcet with Some b -> b | None -> wcet in
  if wcet <= 0 then invalid_arg "Task.make: wcet must be positive";
  if bcet < 0 || bcet > wcet then
    invalid_arg "Task.make: need 0 <= bcet <= wcet";
  if voting_overhead < 0 || detection_overhead < 0 then
    invalid_arg "Task.make: negative overhead";
  { id; name; bcet; wcet; voting_overhead; detection_overhead }

let pp ppf t =
  Format.fprintf ppf "%s#%d[%d,%d](ve=%d,dt=%d)" t.name t.id t.bcet t.wcet
    t.voting_overhead t.detection_overhead
