(** Processing elements of the MPSoC architecture (paper §2.1).

    Each processor [p] carries a type, leakage power [stat_p], dynamic power
    [dyn_p], and a constant transient-fault rate [lambda_p] per time unit.
    A per-processor speed factor models heterogeneity of execution times; a
    scheduling policy says how tasks mapped onto it are served locally. *)

type policy =
  | Preemptive_fp  (** fixed-priority, preemptive *)
  | Non_preemptive_fp  (** fixed-priority, run-to-completion *)

type t = {
  id : int;  (** index into the architecture's processor array *)
  name : string;
  proc_type : string;  (** e.g. "RISC", "DSP" — informational *)
  static_power : float;  (** leakage power, consumed while allocated *)
  dynamic_power : float;  (** power at 100 % utilisation *)
  fault_rate : float;  (** lambda_p: transient faults per time unit *)
  speed : float;  (** execution-time multiplier; 1.0 = reference speed *)
  policy : policy;
}

val make :
  ?proc_type:string ->
  ?static_power:float ->
  ?dynamic_power:float ->
  ?fault_rate:float ->
  ?speed:float ->
  ?policy:policy ->
  id:int ->
  name:string ->
  unit ->
  t
(** Defaults: type ["RISC"], static 0.1, dynamic 1.0, fault rate 1e-6,
    speed 1.0, preemptive fixed-priority. *)

val scale_time : t -> int -> int
(** [scale_time p c] is [c] scaled by the processor's speed factor, rounded
    up (slower processor => larger execution time), at least [c > 0 => 1]. *)

val fault_probability : t -> int -> float
(** [fault_probability p duration] is the probability that at least one
    transient fault strikes an execution of the given duration on [p]:
    [1 - exp (-lambda_p * duration)]. *)

val pp : Format.formatter -> t -> unit
