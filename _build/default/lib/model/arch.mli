(** MPSoC architecture [A = (P, nw)] (paper §2.1).

    Processors communicate over a shared interconnect characterised by a
    maximum bandwidth [bw_nw] and a fixed per-transfer latency. Faults on
    communication links are assumed transparent (handled by low-level
    error-resilient techniques), as in the paper. *)

type t = private {
  procs : Proc.t array;
  bus_bandwidth : int;  (** payload units transferred per time unit *)
  bus_latency : int;  (** fixed start-up cost per remote transfer *)
}

val make : ?bus_bandwidth:int -> ?bus_latency:int -> Proc.t array -> t
(** Defaults: bandwidth 1 unit/time, latency 0. Processor ids must equal
    their array index.
    @raise Invalid_argument on inconsistent ids or non-positive
    bandwidth. *)

val n_procs : t -> int

val proc : t -> int -> Proc.t
(** @raise Invalid_argument if the id is out of range. *)

val comm_delay : t -> size:int -> src_proc:int -> dst_proc:int -> int
(** Worst-case transfer delay of a message of [size] payload units between
    the given processors: [0] if they are equal, otherwise
    [latency + ceil (size / bandwidth)]. *)

val pp : Format.formatter -> t -> unit
