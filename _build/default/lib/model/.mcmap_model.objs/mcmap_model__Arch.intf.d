lib/model/arch.mli: Format Proc
