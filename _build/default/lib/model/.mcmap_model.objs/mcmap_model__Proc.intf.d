lib/model/proc.mli: Format
