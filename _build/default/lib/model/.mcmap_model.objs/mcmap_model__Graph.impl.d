lib/model/graph.ml: Array Channel Criticality Format Hashtbl List Task
