lib/model/criticality.mli: Format
