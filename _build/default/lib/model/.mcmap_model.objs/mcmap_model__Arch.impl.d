lib/model/arch.ml: Array Format Mcmap_util Proc
