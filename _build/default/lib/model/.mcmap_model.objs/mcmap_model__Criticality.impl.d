lib/model/criticality.ml: Format
