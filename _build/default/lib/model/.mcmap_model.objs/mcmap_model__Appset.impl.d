lib/model/appset.ml: Array Criticality Format Graph Hashtbl List Mcmap_util
