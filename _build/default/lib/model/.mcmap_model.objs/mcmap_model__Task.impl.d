lib/model/task.ml: Format
