lib/model/graph.mli: Channel Criticality Format Task
