lib/model/channel.ml: Format
