lib/model/channel.mli: Format
