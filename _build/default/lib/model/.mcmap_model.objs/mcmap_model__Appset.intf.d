lib/model/appset.mli: Format Graph Task
