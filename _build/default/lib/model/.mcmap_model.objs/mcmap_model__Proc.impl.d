lib/model/proc.ml: Format
