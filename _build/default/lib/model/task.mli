(** A task [v] of a task graph (paper §2.1): characterised by
    [(bcet_v, wcet_v, ve_v, dt_v)] — best/worst-case execution time, voting
    overhead (incurred by replication voters) and detection overhead
    (fault detection + context save/restore + roll-back, incurred by
    re-execution). *)

type t = {
  id : int;  (** index within its graph's task array *)
  name : string;
  bcet : int;
  wcet : int;
  voting_overhead : int;  (** ve_v *)
  detection_overhead : int;  (** dt_v *)
}

val make :
  ?bcet:int ->
  ?voting_overhead:int ->
  ?detection_overhead:int ->
  id:int ->
  name:string ->
  wcet:int ->
  unit ->
  t
(** Defaults: [bcet = wcet], overheads 0.
    @raise Invalid_argument unless [0 <= bcet <= wcet], [wcet > 0] and
    overheads are non-negative. *)

val pp : Format.formatter -> t -> unit
