type policy = Preemptive_fp | Non_preemptive_fp

type t = {
  id : int;
  name : string;
  proc_type : string;
  static_power : float;
  dynamic_power : float;
  fault_rate : float;
  speed : float;
  policy : policy;
}

let make ?(proc_type = "RISC") ?(static_power = 0.1) ?(dynamic_power = 1.0)
    ?(fault_rate = 1e-6) ?(speed = 1.0) ?(policy = Preemptive_fp) ~id ~name
    () =
  if static_power < 0. || dynamic_power < 0. then
    invalid_arg "Proc.make: negative power";
  if fault_rate < 0. then invalid_arg "Proc.make: negative fault rate";
  if speed <= 0. then invalid_arg "Proc.make: non-positive speed";
  { id; name; proc_type; static_power; dynamic_power; fault_rate; speed;
    policy }

let scale_time p c =
  if c <= 0 then 0
  else max 1 (int_of_float (ceil (float_of_int c *. p.speed)))

let fault_probability p duration =
  if duration <= 0 then 0.
  else 1. -. exp (-.p.fault_rate *. float_of_int duration)

let pp ppf p =
  Format.fprintf ppf "%s#%d(%s, stat=%.3f, dyn=%.3f, lambda=%.2e, x%.2f)"
    p.name p.id p.proc_type p.static_power p.dynamic_power p.fault_rate
    p.speed
