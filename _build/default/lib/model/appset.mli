(** The application set [T] sharing the MPSoC (paper §2.1), plus global
    task references used by mappings and analyses. *)

type task_ref = { graph : int; task : int }
(** Identifies task [task] of graph [graph] within an application set. *)

type t = private { graphs : Graph.t array }

val make : Graph.t array -> t
(** @raise Invalid_argument on an empty set or duplicate graph names. *)

val n_graphs : t -> int

val graph : t -> int -> Graph.t

val graph_index : t -> string -> int
(** Index of the graph with the given name.
    @raise Not_found otherwise. *)

val hyperperiod : t -> int
(** LCM of all graph periods. *)

val total_tasks : t -> int

val all_task_refs : t -> task_ref list
(** Every task of every graph, in (graph, task) lexicographic order. *)

val task : t -> task_ref -> Task.t

val droppable_graphs : t -> int list
(** Indices of droppable graphs, ascending. *)

val critical_graphs : t -> int list
(** Indices of non-droppable graphs, ascending. *)

val total_service : t -> float
(** Sum of service values of droppable graphs. *)

val pp : Format.formatter -> t -> unit

val pp_task_ref : Format.formatter -> task_ref -> unit
