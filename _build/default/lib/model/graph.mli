(** A task graph [t = (V_t, E_t, pr_t, f_t, sv_t)] (paper §2.1): a DAG of
    tasks released every [pr_t] time units, with an implicit or explicit
    relative deadline and a criticality attribute. *)

type t = private {
  name : string;
  tasks : Task.t array;  (** task [i] has [Task.id = i] *)
  channels : Channel.t array;
  period : int;  (** pr_t *)
  deadline : int;  (** relative deadline; defaults to the period *)
  criticality : Criticality.t;
}

val make :
  ?deadline:int ->
  name:string ->
  tasks:Task.t array ->
  channels:Channel.t array ->
  period:int ->
  criticality:Criticality.t ->
  unit ->
  t
(** Validates the graph: contiguous task ids, channel endpoints in range,
    no duplicate channels, acyclicity, positive period, deadline > 0.
    @raise Invalid_argument with a descriptive message otherwise. *)

val n_tasks : t -> int

val task : t -> int -> Task.t

val preds : t -> int -> (int * Channel.t) list
(** Predecessors of a task with the connecting channel. *)

val succs : t -> int -> (int * Channel.t) list

val sources : t -> int list
(** Tasks with no predecessor, in id order. *)

val sinks : t -> int list
(** Tasks with no successor, in id order. *)

val topological_order : t -> int array
(** A topological order of task ids (deterministic: Kahn's algorithm with
    smallest-id-first tie-breaking). *)

val depth : t -> int array
(** [depth.(v)] = length of the longest channel-path ending at [v]. *)

val is_droppable : t -> bool

val total_wcet : t -> int
(** Sum of task WCETs — a coarse load measure. *)

val pp : Format.formatter -> t -> unit
