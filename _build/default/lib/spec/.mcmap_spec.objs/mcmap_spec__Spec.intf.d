lib/spec/spec.mli: Mcmap_hardening Mcmap_model
