lib/spec/spec.ml: Array Format Hashtbl List Mcmap_hardening Mcmap_model Mcmap_util Option Result String
