module Sexp = Mcmap_util.Sexp
module Proc = Mcmap_model.Proc
module Arch = Mcmap_model.Arch
module Criticality = Mcmap_model.Criticality
module Task = Mcmap_model.Task
module Channel = Mcmap_model.Channel
module Graph = Mcmap_model.Graph
module Appset = Mcmap_model.Appset
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique

type system = {
  arch : Arch.t;
  apps : Appset.t;
}

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

let protect_invalid f =
  try Ok (f ()) with Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Reading *)

let read_processor id fields =
  let* name = Sexp.assoc_atom "name" fields in
  let* proc_type = Sexp.assoc_atom_opt "type" fields in
  let* static_power = Sexp.assoc_float_opt "static" fields in
  let* dynamic_power = Sexp.assoc_float_opt "dynamic" fields in
  let* fault_rate = Sexp.assoc_float_opt "fault-rate" fields in
  let* speed = Sexp.assoc_float_opt "speed" fields in
  let* policy_name = Sexp.assoc_atom_opt "policy" fields in
  let* policy =
    match policy_name with
    | None | Some "preemptive" -> Ok Proc.Preemptive_fp
    | Some "non-preemptive" -> Ok Proc.Non_preemptive_fp
    | Some other ->
      Error
        (Format.asprintf
           "processor %s: unknown policy %s (expected preemptive or \
            non-preemptive)"
           name other) in
  protect_invalid (fun () ->
      Proc.make ?proc_type ?static_power ?dynamic_power ?fault_rate ?speed
        ~policy ~id ~name ())

let read_architecture fields =
  let bus = Option.value ~default:[] (Sexp.assoc "bus" fields) in
  let* bus_bandwidth = Sexp.assoc_int_opt "bandwidth" bus in
  let* bus_latency = Sexp.assoc_int_opt "latency" bus in
  let proc_fields = Sexp.fields "processor" fields in
  if proc_fields = [] then Error "architecture: no processors"
  else begin
    let* procs =
      collect
        (fun (id, f) -> read_processor id f)
        (List.mapi (fun id f -> (id, f)) proc_fields) in
    protect_invalid (fun () ->
        Arch.make ?bus_bandwidth ?bus_latency (Array.of_list procs))
  end

let read_task id fields =
  let* name = Sexp.assoc_atom "name" fields in
  let* wcet = Sexp.assoc_int "wcet" fields in
  let* bcet = Sexp.assoc_int_opt "bcet" fields in
  let* detect = Sexp.assoc_int_opt "detect" fields in
  let* vote = Sexp.assoc_int_opt "vote" fields in
  protect_invalid (fun () ->
      Task.make ?bcet
        ?detection_overhead:detect ?voting_overhead:vote ~id ~name ~wcet ())

let read_channel ~task_index fields =
  let* from_name = Sexp.assoc_atom "from" fields in
  let* to_name = Sexp.assoc_atom "to" fields in
  let* size = Sexp.assoc_int_opt "size" fields in
  let resolve name =
    match Hashtbl.find_opt task_index name with
    | Some id -> Ok id
    | None -> Error (Format.asprintf "channel: unknown task %s" name) in
  let* src = resolve from_name in
  let* dst = resolve to_name in
  protect_invalid (fun () -> Channel.make ?size ~src ~dst ())

let read_application fields =
  let* name = Sexp.assoc_atom "name" fields in
  let* period = Sexp.assoc_int "period" fields in
  let* deadline = Sexp.assoc_int_opt "deadline" fields in
  let* critical = Sexp.assoc_float_opt "critical" fields in
  let* droppable = Sexp.assoc_float_opt "droppable" fields in
  let* criticality =
    match critical, droppable with
    | Some f, None -> protect_invalid (fun () -> Criticality.critical f)
    | None, Some sv -> protect_invalid (fun () -> Criticality.droppable sv)
    | Some _, Some _ ->
      Error
        (Format.asprintf
           "application %s: both (critical ...) and (droppable ...)" name)
    | None, None ->
      Error
        (Format.asprintf
           "application %s: needs (critical <rate>) or (droppable <sv>)"
           name) in
  let* tasks =
    collect
      (fun (id, f) -> read_task id f)
      (List.mapi (fun id f -> (id, f)) (Sexp.fields "task" fields)) in
  let task_index = Hashtbl.create 16 in
  let* () =
    let rec register = function
      | [] -> Ok ()
      | (t : Task.t) :: rest ->
        if Hashtbl.mem task_index t.Task.name then
          Error
            (Format.asprintf "application %s: duplicate task %s" name
               t.Task.name)
        else begin
          Hashtbl.add task_index t.Task.name t.Task.id;
          register rest
        end in
    register tasks in
  let* channels =
    collect (read_channel ~task_index) (Sexp.fields "channel" fields) in
  protect_invalid (fun () ->
      Graph.make ?deadline ~name ~tasks:(Array.of_list tasks)
        ~channels:(Array.of_list channels) ~period ~criticality ())

let read_system input =
  let* exprs = Sexp.parse input in
  let tops =
    List.filter_map
      (function Sexp.List l -> Some l | Sexp.Atom _ -> None)
      exprs in
  let arch_fields =
    List.filter_map
      (function
        | Sexp.Atom "architecture" :: rest -> Some rest
        | _ -> None)
      tops in
  let* arch =
    match arch_fields with
    | [ fields ] -> read_architecture fields
    | [] -> Error "missing (architecture ...)"
    | _ :: _ :: _ -> Error "more than one (architecture ...)" in
  let app_fields =
    List.filter_map
      (function
        | Sexp.Atom "application" :: rest -> Some rest
        | _ -> None)
      tops in
  if app_fields = [] then Error "no (application ...) blocks"
  else begin
    let* graphs = collect read_application app_fields in
    let* apps =
      protect_invalid (fun () -> Appset.make (Array.of_list graphs)) in
    Ok { arch; apps }
  end

(* ------------------------------------------------------------------ *)
(* Plans *)

let proc_id_of_name { arch; _ } name =
  let n = Arch.n_procs arch in
  let rec find i =
    if i >= n then Error (Format.asprintf "unknown processor %s" name)
    else if (Arch.proc arch i).Proc.name = name then Ok i
    else find (i + 1) in
  find 0

let graph_id_of_name { apps; _ } name =
  match Appset.graph_index apps name with
  | i -> Ok i
  | exception Not_found ->
    Error (Format.asprintf "unknown application %s" name)

let task_id_of_name { apps; _ } gi name =
  let g = Appset.graph apps gi in
  let n = Graph.n_tasks g in
  let rec find i =
    if i >= n then
      Error
        (Format.asprintf "unknown task %s in application %s" name
           g.Graph.name)
    else if (Graph.task g i).Task.name = name then Ok i
    else find (i + 1) in
  find 0

let read_harden fields =
  match Sexp.assoc "harden" fields with
  | None -> Ok Technique.No_hardening
  | Some [ Sexp.List [ Sexp.Atom "reexec"; Sexp.Atom k ] ] ->
    (match int_of_string_opt k with
     | Some k -> protect_invalid (fun () -> Technique.re_execution k)
     | None -> Error "harden: (reexec <k>) expects an integer")
  | Some [ Sexp.List [ Sexp.Atom "checkpoint"; Sexp.Atom n; Sexp.Atom k ] ]
    ->
    (match int_of_string_opt n, int_of_string_opt k with
     | Some segments, Some k ->
       protect_invalid (fun () -> Technique.checkpointing ~segments ~k)
     | _, _ -> Error "harden: (checkpoint <n> <k>) expects two integers")
  | Some [ Sexp.List [ Sexp.Atom "active"; Sexp.Atom n ] ] ->
    (match int_of_string_opt n with
     | Some n -> protect_invalid (fun () -> Technique.active_replication n)
     | None -> Error "harden: (active <n>) expects an integer")
  | Some [ Sexp.List [ Sexp.Atom "passive"; Sexp.Atom m ] ] ->
    (match int_of_string_opt m with
     | Some m -> protect_invalid (fun () -> Technique.passive_replication m)
     | None -> Error "harden: (passive <m>) expects an integer")
  | Some _ ->
    Error
      "harden: expected (reexec <k>), (checkpoint <n> <k>), (active <n>) \
       or (passive <m>)"

let read_bind system fields =
  let* app_name = Sexp.assoc_atom "app" fields in
  let* task_name = Sexp.assoc_atom "task" fields in
  let* proc_name = Sexp.assoc_atom "proc" fields in
  let* gi = graph_id_of_name system app_name in
  let* ti = task_id_of_name system gi task_name in
  let* primary = proc_id_of_name system proc_name in
  let* technique = read_harden fields in
  let* replicas =
    match Sexp.assoc "replicas" fields with
    | None -> Ok [||]
    | Some items ->
      let* names = collect Sexp.atom items in
      let* ids = collect (proc_id_of_name system) names in
      Ok (Array.of_list ids) in
  let* voter =
    match Sexp.assoc "voter" fields with
    | None -> Ok primary
    | Some [ Sexp.Atom name ] -> proc_id_of_name system name
    | Some _ -> Error "voter: expected one processor name" in
  let expected = Technique.replica_count technique - 1 in
  if Array.length replicas <> expected then
    Error
      (Format.asprintf
         "bind %s.%s: technique needs %d replica processors, got %d"
         app_name task_name expected (Array.length replicas))
  else
    Ok
      (gi, ti,
       { Plan.technique; primary_proc = primary; replica_procs = replicas;
         voter_proc = voter })

let read_plan system input =
  let* exprs = Sexp.parse input in
  let* fields =
    match exprs with
    | [ Sexp.List (Sexp.Atom "plan" :: rest) ] -> Ok rest
    | _ -> Error "expected a single (plan ...) expression" in
  let* dropped_names =
    match Sexp.assoc "dropped" fields with
    | None -> Ok []
    | Some items -> collect Sexp.atom items in
  let* dropped_ids = collect (graph_id_of_name system) dropped_names in
  let apps = system.apps in
  let dropped = Array.make (Appset.n_graphs apps) false in
  List.iter (fun gi -> dropped.(gi) <- true) dropped_ids;
  let decisions =
    Array.init (Appset.n_graphs apps) (fun gi ->
        Array.make (Graph.n_tasks (Appset.graph apps gi)) None) in
  let* binds = collect (read_bind system) (Sexp.fields "bind" fields) in
  let* () =
    let rec apply = function
      | [] -> Ok ()
      | (gi, ti, d) :: rest ->
        if decisions.(gi).(ti) <> None then
          Error
            (Format.asprintf "task %s.%s bound twice"
               (Appset.graph apps gi).Graph.name
               (Graph.task (Appset.graph apps gi) ti).Task.name)
        else begin
          decisions.(gi).(ti) <- Some d;
          apply rest
        end in
    apply binds in
  let missing = ref [] in
  Array.iteri
    (fun gi row ->
      Array.iteri
        (fun ti d ->
          if d = None then
            missing :=
              Format.asprintf "%s.%s"
                (Appset.graph apps gi).Graph.name
                (Graph.task (Appset.graph apps gi) ti).Task.name
              :: !missing)
        row)
    decisions;
  match !missing with
  | _ :: _ ->
    Error
      (Format.asprintf "unbound tasks: %s"
         (String.concat ", " (List.rev !missing)))
  | [] ->
    let decisions = Array.map (Array.map Option.get) decisions in
    protect_invalid (fun () -> Plan.make apps ~decisions ~dropped)

(* ------------------------------------------------------------------ *)
(* Writing *)

let atomf fmt = Format.kasprintf (fun s -> Sexp.Atom s) fmt

let field name values = Sexp.List (Sexp.Atom name :: values)

let field1 name value = field name [ Sexp.Atom value ]

let write_float x =
  (* shortest representation that round-trips *)
  let s = Format.asprintf "%.12g" x in
  s

let write_processor (p : Proc.t) =
  field "processor"
    [ field1 "name" p.Proc.name;
      field1 "type" p.Proc.proc_type;
      field1 "static" (write_float p.Proc.static_power);
      field1 "dynamic" (write_float p.Proc.dynamic_power);
      field1 "fault-rate" (write_float p.Proc.fault_rate);
      field1 "speed" (write_float p.Proc.speed);
      field1 "policy"
        (match p.Proc.policy with
         | Proc.Preemptive_fp -> "preemptive"
         | Proc.Non_preemptive_fp -> "non-preemptive") ]

let write_architecture (arch : Arch.t) =
  field "architecture"
    (field "bus"
       [ field1 "bandwidth" (string_of_int arch.Arch.bus_bandwidth);
         field1 "latency" (string_of_int arch.Arch.bus_latency) ]
     :: List.map write_processor (Array.to_list arch.Arch.procs))

let write_task (t : Task.t) =
  field "task"
    [ field1 "name" t.Task.name;
      field1 "wcet" (string_of_int t.Task.wcet);
      field1 "bcet" (string_of_int t.Task.bcet);
      field1 "detect" (string_of_int t.Task.detection_overhead);
      field1 "vote" (string_of_int t.Task.voting_overhead) ]

let write_channel (g : Graph.t) (c : Channel.t) =
  field "channel"
    [ field1 "from" (Graph.task g c.Channel.src).Task.name;
      field1 "to" (Graph.task g c.Channel.dst).Task.name;
      field1 "size" (string_of_int c.Channel.size) ]

let write_application (g : Graph.t) =
  field "application"
    ([ field1 "name" g.Graph.name;
       field1 "period" (string_of_int g.Graph.period);
       field1 "deadline" (string_of_int g.Graph.deadline) ]
     @ (match g.Graph.criticality with
        | Criticality.Critical f ->
          [ field1 "critical" (write_float f) ]
        | Criticality.Droppable sv ->
          [ field1 "droppable" (write_float sv) ])
     @ List.map write_task (Array.to_list g.Graph.tasks)
     @ List.map (write_channel g) (Array.to_list g.Graph.channels))

let write_system { arch; apps } =
  String.concat "\n\n"
    (Sexp.to_string (write_architecture arch)
     :: List.map
          (fun g -> Sexp.to_string (write_application g))
          (Array.to_list apps.Appset.graphs))
  ^ "\n"

let write_plan system (plan : Plan.t) =
  let apps = system.apps in
  let proc_name p = (Arch.proc system.arch p).Proc.name in
  let dropped =
    List.map
      (fun gi -> Sexp.Atom (Appset.graph apps gi).Graph.name)
      (Plan.dropped_graphs plan) in
  let binds = ref [] in
  Array.iteri
    (fun gi row ->
      let g = Appset.graph apps gi in
      Array.iteri
        (fun ti (d : Plan.decision) ->
          let base =
            [ field1 "app" g.Graph.name;
              field1 "task" (Graph.task g ti).Task.name;
              field1 "proc" (proc_name d.Plan.primary_proc) ] in
          let harden =
            match d.Plan.technique with
            | Technique.No_hardening -> []
            | Technique.Re_execution k ->
              [ field "harden" [ field1 "reexec" (string_of_int k) ] ]
            | Technique.Checkpointing (n, k) ->
              [ field "harden"
                  [ field "checkpoint"
                      [ Sexp.Atom (string_of_int n);
                        Sexp.Atom (string_of_int k) ] ] ]
            | Technique.Active_replication n ->
              [ field "harden" [ field1 "active" (string_of_int n) ] ]
            | Technique.Passive_replication m ->
              [ field "harden" [ field1 "passive" (string_of_int m) ] ] in
          let replicas =
            if Array.length d.Plan.replica_procs = 0 then []
            else
              [ field "replicas"
                  (Array.to_list
                     (Array.map
                        (fun p -> Sexp.Atom (proc_name p))
                        d.Plan.replica_procs)) ] in
          (* always written: semantically ignored without a voter, but
             keeps write/read a strict round-trip *)
          let voter =
            [ field "voter" [ atomf "%s" (proc_name d.Plan.voter_proc) ] ]
          in
          binds := field "bind" (base @ harden @ replicas @ voter) :: !binds)
        row)
    plan.Plan.decisions;
  Sexp.to_string
    (field "plan"
       ((if dropped = [] then [] else [ field "dropped" dropped ])
        @ List.rev !binds))
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Files *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    Ok content
  with Sys_error msg -> Error msg

let load_system path =
  let* content = read_file path in
  read_system content

let load_plan system path =
  let* content = read_file path in
  read_plan system content
