(** The Adhoc baseline of paper §5.1: a single hand-built worst-case
    trace that enters the critical state at the very beginning of the
    hyperperiod, maximally re-executes every re-executable task, makes
    every replica faulty (so all spares fire) and drops every dropped-set
    task from time zero. Because of scheduling anomalies this trace does
    {e not} always dominate the true worst case — exactly the point
    Table 2 makes. *)

val run : Mcmap_sched.Jobset.t -> int option array
(** Per graph: response time observed in the adhoc trace ([None] for
    graphs dropped from the start or otherwise undelivered). *)
