(** A failure profile: which fault events strike during one simulated
    hyperperiod. Profiles answer two questions posed by the engine:
    does attempt [i] of a re-executable job fail, and does a replica
    deliver a wrong value (forcing the voter to call in passive spares).

    Profiles are pure functions of the job and attempt, so a simulation
    run is reproducible and independent of event ordering. *)

type t = {
  reexec_fault : Mcmap_sched.Job.t -> attempt:int -> bool;
      (** attempt [i] (0-based) of the job is hit by a fault *)
  replica_fault : Mcmap_sched.Job.t -> bool;
      (** the replica job delivers a wrong value *)
}

val none : t
(** Fault-free execution. *)

val all : t
(** Every fault opportunity fires: maximal re-execution everywhere,
    every replica wrong (the Adhoc stress profile). *)

val random : seed:int -> ?bias:float -> Mcmap_sched.Jobset.t -> t
(** A random profile for worst-case search (the paper's WC-Sim runs
    10,000 of these). Each fault opportunity fires independently with
    probability [bias] (default 0.3). WC-Sim explores the space of fault
    scenarios, so the bias is a search knob, not the physical rate. *)

val realistic : seed:int -> Mcmap_sched.Jobset.t -> t
(** Faults fire with their physical probability
    [1 - exp (-lambda_p * wcet)] derived from the bound processor's fault
    rate — for reliability-flavoured studies. *)
