module Jobset = Mcmap_sched.Jobset
module Happ = Mcmap_hardening.Happ

type result = {
  graph_wcrt : int option array;
  profiles : int;
  criticals : int;
}

let run ?(profiles = 1000) ?(bias = 0.3) ?(seed = 42) js =
  let n_graphs = Happ.n_graphs js.Jobset.happ in
  let graph_wcrt = Array.make n_graphs None in
  let criticals = ref 0 in
  for p = 0 to profiles - 1 do
    let profile = Fault_profile.random ~seed:(seed + p) ~bias js in
    let outcome = Engine.run js ~profile in
    if outcome.Engine.critical_at <> None then incr criticals;
    for g = 0 to n_graphs - 1 do
      match outcome.Engine.graph_response.(g) with
      | None -> ()
      | Some r ->
        (match graph_wcrt.(g) with
         | Some best when best >= r -> ()
         | Some _ | None -> graph_wcrt.(g) <- Some r)
    done
  done;
  { graph_wcrt; profiles; criticals = !criticals }
