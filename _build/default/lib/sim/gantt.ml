module Jobset = Mcmap_sched.Jobset
module Job = Mcmap_sched.Job
module Happ = Mcmap_hardening.Happ
module Arch = Mcmap_model.Arch

let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

let label_of i = letters.[i mod String.length letters]

let render ?(width = 72) js (outcome : Engine.outcome) =
  let happ = js.Jobset.happ in
  let n_procs = Arch.n_procs happ.Happ.arch in
  let horizon = max 1 js.Jobset.hyperperiod in
  let col t = Mcmap_util.Mathx.clamp ~lo:0 ~hi:(width - 1) (t * width / horizon) in
  let rows = Array.init n_procs (fun _ -> Bytes.make width '.') in
  (* jobs that actually executed get a stable letter, in id order *)
  let executed =
    List.sort_uniq compare
      (List.map (fun (s : Engine.segment) -> s.Engine.job) outcome.Engine.segments)
  in
  let letter_of_job = Hashtbl.create 16 in
  List.iteri (fun i j -> Hashtbl.add letter_of_job j (label_of i)) executed;
  List.iter
    (fun (s : Engine.segment) ->
      let c = Hashtbl.find letter_of_job s.Engine.job in
      let first = col s.Engine.start in
      let last = max first (col (s.Engine.stop - 1)) in
      for x = first to last do
        Bytes.set rows.(s.Engine.proc) x c
      done)
    outcome.Engine.segments;
  (match outcome.Engine.critical_at with
   | Some t ->
     let x = col t in
     Array.iter
       (fun row -> if Bytes.get row x = '.' then Bytes.set row x '!')
       rows
   | None -> ());
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Format.asprintf "time 0..%d (%d columns)\n" horizon width);
  Array.iteri
    (fun p row ->
      Buffer.add_string buf
        (Format.asprintf "%-6s|%s|\n"
           (Arch.proc happ.Happ.arch p).Mcmap_model.Proc.name
           (Bytes.to_string row)))
    rows;
  (match outcome.Engine.critical_at with
   | Some t ->
     Buffer.add_string buf
       (Format.asprintf "('!' marks the critical-state switch at t=%d)\n" t)
   | None -> ());
  Buffer.add_string buf "legend:";
  List.iter
    (fun jid ->
      let j = Jobset.job js jid in
      let ht = (Happ.graph happ j.Job.graph).Happ.tasks.(j.Job.task) in
      Buffer.add_string buf
        (Format.asprintf " %c=%s#%d"
           (Hashtbl.find letter_of_job jid)
           ht.Happ.name j.Job.instance))
    executed;
  let not_run =
    Array.to_list js.Jobset.jobs
    |> List.filter_map (fun (j : Job.t) ->
           if outcome.Engine.dropped.(j.Job.id) then
             let ht =
               (Happ.graph happ j.Job.graph).Happ.tasks.(j.Job.task) in
             Some (Format.asprintf "%s#%d" ht.Happ.name j.Job.instance)
           else None) in
  if not_run <> [] then
    Buffer.add_string buf
      (Format.asprintf "\ndropped: %s" (String.concat ", " not_run));
  Buffer.add_char buf '\n';
  Buffer.contents buf
