(** Probabilistic response-time analysis by Monte-Carlo — the analysis
    style of the paper's Table 1 baseline ref [5] (Axer et al.):
    instead of a worst-case bound, estimate the response-time
    distribution and the deadline-miss probability under the physical
    fault rates.

    Unlike {!Monte_carlo} (which searches for the worst case with a
    biased fault profile), this module samples {e realistic} profiles
    (faults at the processors' [lambda_p] rates) and random execution
    times, so its percentiles estimate what a deployed system would
    see — and its maximum systematically underestimates the certified
    worst case, which is exactly the paper's argument for a safe
    analysis. *)

type graph_stats = {
  samples : int;  (** delivered instances observed *)
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  maximum : float;
  deadline_miss_pct : float;
      (** share of delivered instances past the deadline *)
  dropped_pct : float;  (** share of instances lost to dropping *)
}

type t = {
  per_graph : graph_stats array;
  runs : int;
  critical_runs : int;  (** runs that entered the critical state *)
}

val run : ?runs:int -> ?seed:int -> Mcmap_sched.Jobset.t -> t
(** Default: 1,000 runs with random execution durations and
    physical-rate fault profiles. *)

val render : Mcmap_sched.Jobset.t -> t -> string
