let run js =
  let outcome =
    Engine.run ~start_critical:true js ~profile:Fault_profile.all in
  outcome.Engine.graph_response
