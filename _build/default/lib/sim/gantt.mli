(** ASCII Gantt rendering of simulation traces — the form in which the
    paper's Figure 1 presents its schedules.

    One row per processor; each execution segment is drawn with the
    letter assigned to its job (see the legend below the chart), ['.']
    is idle time. A ['!'] marks the instant the system entered the
    critical state. *)

val render :
  ?width:int -> Mcmap_sched.Jobset.t -> Engine.outcome -> string
(** [render js outcome] draws the trace over one hyperperiod. [width]
    (default 72) is the number of time columns. *)
