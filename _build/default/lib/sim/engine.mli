(** Discrete-event simulation of one hyperperiod of a hardened
    application set under a failure profile.

    The engine implements the run-time behaviour the paper's analysis
    must bound (§3):

    - per-processor fixed-priority scheduling (preemptive or
      non-preemptive, per the processor's policy);
    - re-execution: a fault detected at the end of an attempt re-runs
      the task, up to its [k] budget, and moves the system to the
      {e critical} state;
    - passive replication: when the two active replicas disagree, the
      voter instantiates spares one at a time (also entering the
      critical state); active replication masks faults silently;
    - task dropping: on entry to the critical state, every job of a
      dropped-set ([T_d]) graph that has not yet started is abandoned
      (including jobs released later inside the critical window);
      already-running jobs complete. The system stays critical until
      the end of the current application hyperperiod, where the normal
      state is restored and dropped applications run again (paper §3) —
      observable when the jobset spans several hyperperiods. *)

type exec_mode =
  | Worst_case  (** every attempt runs for its WCET *)
  | Best_case  (** every attempt runs for its BCET *)
  | Random_durations of int
      (** per-job durations drawn uniformly from [[bcet, wcet]] with the
          given seed *)

type segment = {
  job : int;  (** job id *)
  proc : int;
  start : int;
  stop : int;  (** exclusive *)
  attempt : int;  (** 0-based execution attempt the cycles belong to *)
}
(** A maximal interval during which a job occupied a processor —
    preemptions and re-executions split a job into several segments. *)

type outcome = {
  finish : int option array;  (** per job: final completion time *)
  dropped : bool array;  (** per job: abandoned by the drop *)
  critical_at : int option;  (** when the system first turned critical *)
  critical_windows : (int * int) list;
      (** chronological [(entry, restore)] critical intervals; the
          restore instant is the next hyperperiod boundary *)
  segments : segment list;  (** execution trace, chronological *)
  graph_response : int option array;
      (** per graph: worst observed response time over instances that
          delivered their outputs *)
  graph_complete : bool array;
      (** per graph: every instance delivered its outputs *)
  graph_deadline_ok : bool array;
      (** per graph: every delivered instance met the deadline *)
}

val run :
  ?mode:exec_mode ->
  ?start_critical:bool ->
  Mcmap_sched.Jobset.t ->
  profile:Fault_profile.t ->
  outcome
(** Simulate one hyperperiod. [start_critical] (default false) enters the
    critical state at time 0 — used by the Adhoc baseline. Default mode:
    {!Worst_case}. *)
