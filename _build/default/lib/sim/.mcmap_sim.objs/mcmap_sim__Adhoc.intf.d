lib/sim/adhoc.mli: Mcmap_sched
