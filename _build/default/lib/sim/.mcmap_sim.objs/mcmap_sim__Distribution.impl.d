lib/sim/distribution.ml: Array Engine Fault_profile Format Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_util
