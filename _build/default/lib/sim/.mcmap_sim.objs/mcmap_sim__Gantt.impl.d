lib/sim/gantt.ml: Array Buffer Bytes Engine Format Hashtbl List Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_util String
