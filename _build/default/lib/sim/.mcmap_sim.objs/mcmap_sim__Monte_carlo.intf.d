lib/sim/monte_carlo.mli: Mcmap_sched
