lib/sim/adhoc.ml: Engine Fault_profile
