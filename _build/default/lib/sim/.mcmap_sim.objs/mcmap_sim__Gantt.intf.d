lib/sim/gantt.mli: Engine Mcmap_sched
