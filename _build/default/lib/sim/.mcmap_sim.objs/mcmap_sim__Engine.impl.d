lib/sim/engine.ml: Array Fault_profile List Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_util
