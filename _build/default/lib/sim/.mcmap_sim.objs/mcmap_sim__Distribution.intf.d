lib/sim/distribution.mli: Mcmap_sched
