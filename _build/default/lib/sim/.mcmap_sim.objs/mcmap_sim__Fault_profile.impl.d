lib/sim/fault_profile.ml: Mcmap_hardening Mcmap_model Mcmap_sched Mcmap_util
