lib/sim/monte_carlo.ml: Array Engine Fault_profile Mcmap_hardening Mcmap_sched
