lib/sim/fault_profile.mli: Mcmap_sched
