lib/sim/engine.mli: Fault_profile Mcmap_sched
