module Job = Mcmap_sched.Job
module Jobset = Mcmap_sched.Jobset
module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc
module Prng = Mcmap_util.Prng

type t = {
  reexec_fault : Job.t -> attempt:int -> bool;
  replica_fault : Job.t -> bool;
}

let none =
  { reexec_fault = (fun _ ~attempt:_ -> false);
    replica_fault = (fun _ -> false) }

let all =
  { reexec_fault = (fun _ ~attempt:_ -> true);
    replica_fault = (fun _ -> true) }

(* A pure keyed coin: hash (seed, job, attempt) into a fresh generator so
   the outcome does not depend on how often or in which order the engine
   asks. *)
let keyed_coin ~seed ~job_id ~attempt p =
  let key = (seed * 1_000_003) + (job_id * 8191) + attempt in
  Prng.bernoulli (Prng.create key) p

let with_probability ~seed probability_of =
  { reexec_fault =
      (fun j ~attempt ->
        keyed_coin ~seed ~job_id:j.Job.id ~attempt (probability_of j));
    replica_fault =
      (fun j ->
        keyed_coin ~seed ~job_id:j.Job.id ~attempt:999_983
          (probability_of j)) }

let random ~seed ?(bias = 0.3) _js = with_probability ~seed (fun _ -> bias)

let realistic ~seed js =
  let arch = js.Jobset.happ.Mcmap_hardening.Happ.arch in
  let probability_of (j : Job.t) =
    Proc.fault_probability (Arch.proc arch j.Job.proc) j.Job.wcet in
  with_probability ~seed probability_of
