module Jobset = Mcmap_sched.Jobset
module Happ = Mcmap_hardening.Happ
module Stats = Mcmap_util.Stats

type graph_stats = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  maximum : float;
  deadline_miss_pct : float;
  dropped_pct : float;
}

type t = {
  per_graph : graph_stats array;
  runs : int;
  critical_runs : int;
}

let run ?(runs = 1000) ?(seed = 42) js =
  let happ = js.Jobset.happ in
  let n_graphs = Happ.n_graphs happ in
  let responses = Array.make n_graphs [] in
  let misses = Array.make n_graphs 0 in
  let dropped_runs = Array.make n_graphs 0 in
  let criticals = ref 0 in
  for r = 0 to runs - 1 do
    let profile = Fault_profile.realistic ~seed:(seed + r) js in
    let o =
      Engine.run ~mode:(Engine.Random_durations (seed + r)) js ~profile in
    if o.Engine.critical_at <> None then incr criticals;
    for g = 0 to n_graphs - 1 do
      (match o.Engine.graph_response.(g) with
       | Some resp -> responses.(g) <- float_of_int resp :: responses.(g)
       | None -> ());
      if not o.Engine.graph_deadline_ok.(g) then misses.(g) <- misses.(g) + 1;
      if not o.Engine.graph_complete.(g) then
        dropped_runs.(g) <- dropped_runs.(g) + 1
    done
  done;
  let per_graph =
    Array.init n_graphs (fun g ->
        let samples = responses.(g) in
        let summary = Stats.summarize samples in
        let pct p =
          match samples with
          | [] -> 0.
          | _ :: _ -> Stats.percentile samples p in
        { samples = summary.Stats.count;
          mean = summary.Stats.mean;
          p50 = pct 50.;
          p95 = pct 95.;
          p99 = pct 99.;
          maximum = summary.Stats.maximum;
          deadline_miss_pct = Stats.ratio_pct misses.(g) runs;
          dropped_pct = Stats.ratio_pct dropped_runs.(g) runs }) in
  { per_graph; runs; critical_runs = !criticals }

let render js t =
  let happ = js.Jobset.happ in
  let table =
    Mcmap_util.Texttable.create
      ~header:
        [ "Graph"; "Runs"; "Mean"; "p50"; "p95"; "p99"; "Max";
          "Miss %"; "Dropped %" ] in
  Array.iteri
    (fun g (s : graph_stats) ->
      let hg = Happ.graph happ g in
      Mcmap_util.Texttable.add_row table
        [ hg.Happ.source.Mcmap_model.Graph.name;
          string_of_int s.samples;
          Format.asprintf "%.1f" s.mean;
          Format.asprintf "%.0f" s.p50;
          Format.asprintf "%.0f" s.p95;
          Format.asprintf "%.0f" s.p99;
          Format.asprintf "%.0f" s.maximum;
          Format.asprintf "%.2f" s.deadline_miss_pct;
          Format.asprintf "%.2f" s.dropped_pct ])
    t.per_graph;
  Mcmap_util.Texttable.render table
  ^ Format.asprintf "(%d of %d runs entered the critical state)\n"
      t.critical_runs t.runs
