(** The WC-Sim baseline of paper §5.1: Monte-Carlo search for the worst
    observed response times over many random failure profiles (the paper
    uses 10,000). *)

type result = {
  graph_wcrt : int option array;
      (** per graph: maximum response observed over all profiles (among
          delivered instances); [None] if no instance ever delivered *)
  profiles : int;
  criticals : int;  (** how many profiles entered the critical state *)
}

val run :
  ?profiles:int ->
  ?bias:float ->
  ?seed:int ->
  Mcmap_sched.Jobset.t ->
  result
(** Defaults: 1,000 profiles, fault bias 0.3, seed 42. Executions run at
    worst case; only the fault pattern varies across profiles. *)
