lib/reliability/fault_model.ml: Array Mcmap_model Mcmap_util
