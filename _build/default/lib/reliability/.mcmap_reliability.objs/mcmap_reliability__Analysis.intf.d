lib/reliability/analysis.mli: Format Mcmap_hardening Mcmap_model
