lib/reliability/fault_model.mli: Mcmap_model
