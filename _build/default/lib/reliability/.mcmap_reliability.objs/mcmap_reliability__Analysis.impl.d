lib/reliability/analysis.ml: Array Fault_model Format List Mcmap_hardening Mcmap_model
