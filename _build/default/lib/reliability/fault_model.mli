(** Transient-fault probabilities under the hardening techniques.

    Faults arrive as a Poisson process with per-processor rate [lambda_p]
    (paper §2.1, after refs [11, 12]); an execution of duration [c] on
    processor [p] is hit with probability [1 - exp (-lambda_p * c)].
    Voters and the detection logic are assumed fault-free, the standard
    assumption in the lineage of papers ([2], [6]) this work builds on. *)

val execution_failure :
  Mcmap_model.Arch.t -> proc:int -> duration:int -> float
(** Probability that a single execution of the given duration on the given
    processor suffers at least one fault. *)

val re_execution_failure : per_attempt:float -> k:int -> float
(** A re-executed task fails only if the original attempt and all [k]
    re-executions fail: [per_attempt ^ (k + 1)]. *)

val majority_failure : float array -> float
(** [majority_failure probs] — probability that majority voting over
    replicas with the given (heterogeneous) failure probabilities cannot
    produce a correct result: at least [floor (n/2) + 1] replicas fail.
    For [n = 2] (duplication) a single failure is fatal (detection
    without correction). Computed exactly by dynamic programming. *)

val passive_failure : active:float array -> spares:float array -> float
(** Passive replication with 2 active replicas and [m] spares fails when
    fewer than 2 of the [2 + m] potential executions are correct, i.e. at
    least [m + 1] fail. Exact DP over heterogeneous probabilities. *)

val at_least_k_failures : float array -> int -> float
(** [at_least_k_failures probs k] — probability that at least [k] of the
    independent events (each failing with its own probability) fail. *)

val poisson_more_than : rate:float -> duration:int -> k:int -> float
(** Probability that a Poisson fault process with the given per-time-unit
    rate strikes more than [k] times during the duration — the failure
    model of checkpointing, which tolerates up to [k] rollbacks. *)
