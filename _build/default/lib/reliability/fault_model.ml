module Arch = Mcmap_model.Arch
module Proc = Mcmap_model.Proc

let execution_failure arch ~proc ~duration =
  Proc.fault_probability (Arch.proc arch proc) duration

let re_execution_failure ~per_attempt ~k =
  let rec power acc i = if i = 0 then acc else power (acc *. per_attempt) (i - 1) in
  power 1. (k + 1)

(* Distribution of the number of failures among independent, heterogeneous
   events: coefficients of prod_i ((1 - q_i) + q_i * x). *)
let failure_count_distribution probs =
  let n = Array.length probs in
  let dist = Array.make (n + 1) 0. in
  dist.(0) <- 1.;
  Array.iter
    (fun q ->
      for f = n downto 0 do
        let stay = dist.(f) *. (1. -. q) in
        let from_below = if f > 0 then dist.(f - 1) *. q else 0. in
        dist.(f) <- stay +. from_below
      done)
    probs;
  dist

let at_least_k_failures probs k =
  if k <= 0 then 1.
  else begin
    let dist = failure_count_distribution probs in
    let n = Array.length probs in
    if k > n then 0.
    else begin
      let acc = ref 0. in
      for f = k to n do
        acc := !acc +. dist.(f)
      done;
      Mcmap_util.Mathx.clamp_f ~lo:0. ~hi:1. !acc
    end
  end

let majority_failure probs =
  let n = Array.length probs in
  if n = 0 then invalid_arg "Fault_model.majority_failure: no replicas";
  if n = 1 then probs.(0)
  else if n = 2 then
    (* Duplication detects but cannot correct: any fault is fatal. *)
    1. -. ((1. -. probs.(0)) *. (1. -. probs.(1)))
  else at_least_k_failures probs ((n / 2) + 1)

let passive_failure ~active ~spares =
  if Array.length active <> 2 then
    invalid_arg "Fault_model.passive_failure: exactly 2 active replicas";
  let all = Array.append active spares in
  at_least_k_failures all (Array.length spares + 1)

let poisson_more_than ~rate ~duration ~k =
  let m = rate *. float_of_int duration in
  let rec upto i term acc =
    if i > k then acc
    else begin
      let term = if i = 0 then exp (-.m) else term *. m /. float_of_int i in
      upto (i + 1) term (acc +. term)
    end in
  Mcmap_util.Mathx.clamp_f ~lo:0. ~hi:1. (1. -. upto 0 0. 0.)
