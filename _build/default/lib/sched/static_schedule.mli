(** A static (time-triggered) list scheduler — the baseline scheduling
    style of the static fault-tolerant mapping approaches the paper
    compares against (Table 1, refs [2, 3]).

    A static schedule fixes every start time offline, so it must be
    synthesized for the worst case (every re-executable task at its
    Eq. (1) budget, every passive spare active) and, to react to faults
    at all, one schedule per fault scenario must be precomputed — the
    paper quotes 19 schedules for a 5-task application of ref [2]. The
    {!scenario_count} of the benchmarks makes that blow-up concrete,
    and {!worst_case} quantifies the rigidity (resource usage) of the
    all-worst-case single schedule. *)

type t = {
  start : int array;  (** per job *)
  finish : int array;  (** per job *)
  makespan : int;
  graph_response : int array;  (** worst response per source graph *)
}

val list_schedule : Jobset.t -> exec:(Job.t -> int) -> t
(** Priority-ordered, non-preemptive list scheduling of the job set with
    the given fixed execution times: each job starts at the earliest
    instant at or after its release when its predecessors' data has
    arrived and its processor is free, ties broken by priority. *)

val worst_case : Jobset.t -> t
(** The schedule a static fault-tolerant approach must certify: every
    job at its critical-state budget (Eq. (1) for re-executables, full
    execution for passive spares). *)

val nominal : Jobset.t -> t
(** The fault-free static schedule (nominal WCETs, spares silent). *)

val scenario_count : Jobset.t -> float
(** How many distinct fault scenarios a per-scenario static approach
    must precompute for this job set: the product of [(k + 1)] over
    re-executable jobs and [2] per passive spare (invoked or not).
    Returned as a float — it overflows quickly, which is the point. *)
