type t = {
  id : int;
  graph : int;
  task : int;
  instance : int;
  release : int;
  abs_deadline : int;
  proc : int;
  priority : int;
  bcet : int;
  wcet : int;
  critical_wcet : int;
  reexec_k : int;
  recovery : int;
  passive : bool;
  voter : bool;
  origin : int;
  droppable : bool;
  in_dropped_set : bool;
}

let response t ~finish = finish - t.release

let pp ppf t =
  Format.fprintf ppf "j%d(g%d.t%d#%d rel=%d p%d prio=%d [%d,%d])" t.id
    t.graph t.task t.instance t.release t.proc t.priority t.bcet t.wcet
