(** Deterministic fixed-priority assignment for hardened tasks.

    Once hardening and mapping are fixed, tasks are scheduled locally on
    each processor by fixed priorities (paper §1: "static
    hardening-mapping / dynamic scheduling"). Priorities are global and
    deterministic so analyses and simulations agree. Two orders are
    provided:

    - {!Rate_monotonic} (the default): shorter period first, then
      topological depth, then a stable (graph, task) index. Priorities
      are deliberately criticality-agnostic — in the paper's design the
      protection of critical applications comes from run-time task
      dropping, not from priority segregation; low-criticality tasks can
      and do delay critical ones until they are dropped (Fig. 1).
    - {!Criticality_first}: non-droppable graphs outrank droppable ones,
      ties broken rate-monotonically. Provided as an ablation: under
      this order droppable tasks can never delay critical ones on
      preemptive processors, and task dropping loses its purpose.

    Smaller number = higher priority. *)

type order = Rate_monotonic | Criticality_first

val assign : ?order:order -> Mcmap_hardening.Happ.t -> int array array
(** [assign happ] returns [prio.(graph).(task)] for every hardened task.
    Priorities are dense in [0, n_tasks). Default order:
    {!Rate_monotonic}. *)
