module Happ = Mcmap_hardening.Happ
module Arch = Mcmap_model.Arch

type t = {
  start : int array;
  finish : int array;
  makespan : int;
  graph_response : int array;
}

let list_schedule js ~exec =
  let n = Jobset.n_jobs js in
  let arch = js.Jobset.happ.Happ.arch in
  let start = Array.make n (-1) and finish = Array.make n (-1) in
  let proc_free = Array.make (Arch.n_procs arch) 0 in
  let pending = Array.init n (fun j -> Array.length js.Jobset.preds.(j)) in
  let data_ready = Array.init n (fun j -> (Jobset.job js j).Job.release) in
  let scheduled = Array.make n false in
  (* Greedy list scheduling: repeatedly place the highest-priority job
     among those whose predecessors are scheduled, at the earliest slot
     its data and processor allow. *)
  for _ = 1 to n do
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if (not scheduled.(j)) && pending.(j) = 0 then begin
        match !best with
        | -1 -> best := j
        | b ->
          let jb = Jobset.job js b and jj = Jobset.job js j in
          let key (x : Job.t) ready = (ready, x.Job.priority, x.Job.id) in
          if key jj data_ready.(j) < key jb data_ready.(b) then best := j
      end
    done;
    let j = !best in
    assert (j >= 0);
    let job = Jobset.job js j in
    let s = max data_ready.(j) proc_free.(job.Job.proc) in
    let c = exec job in
    start.(j) <- s;
    finish.(j) <- s + c;
    proc_free.(job.Job.proc) <- s + c;
    scheduled.(j) <- true;
    Array.iter
      (fun (succ, delay) ->
        pending.(succ) <- pending.(succ) - 1;
        data_ready.(succ) <- max data_ready.(succ) (finish.(j) + delay))
      js.Jobset.succs.(j)
  done;
  let makespan = Array.fold_left max 0 finish in
  let n_graphs = Happ.n_graphs js.Jobset.happ in
  let graph_response =
    Array.init n_graphs (fun graph ->
        List.fold_left
          (fun acc (j : Job.t) ->
            max acc (Job.response j ~finish:finish.(j.Job.id)))
          0
          (Jobset.response_jobs js ~graph)) in
  { start; finish; makespan; graph_response }

let worst_case js =
  list_schedule js ~exec:(fun j -> j.Job.critical_wcet)

let nominal js =
  list_schedule js ~exec:(fun (j : Job.t) ->
      if j.Job.passive then 0 else j.Job.wcet)

let scenario_count js =
  Array.fold_left
    (fun acc (j : Job.t) ->
      if j.Job.reexec_k > 0 then acc *. float_of_int (j.Job.reexec_k + 1)
      else if j.Job.passive then acc *. 2.
      else acc)
    1. js.Jobset.jobs
