lib/sched/job.ml: Format
