lib/sched/bounds.ml: Array Bytes Job Jobset List Mcmap_hardening Mcmap_model
