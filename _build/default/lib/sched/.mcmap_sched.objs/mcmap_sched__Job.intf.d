lib/sched/job.mli: Format
