lib/sched/bounds.mli: Job Jobset
