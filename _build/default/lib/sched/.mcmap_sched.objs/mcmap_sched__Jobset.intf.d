lib/sched/jobset.mli: Format Job Mcmap_hardening Priority
