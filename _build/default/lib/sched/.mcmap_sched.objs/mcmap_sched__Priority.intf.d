lib/sched/priority.mli: Mcmap_hardening
