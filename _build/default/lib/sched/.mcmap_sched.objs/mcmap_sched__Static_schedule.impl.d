lib/sched/static_schedule.ml: Array Job Jobset List Mcmap_hardening Mcmap_model
