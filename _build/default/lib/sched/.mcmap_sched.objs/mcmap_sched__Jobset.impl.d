lib/sched/jobset.ml: Array Format Job List Mcmap_hardening Mcmap_model Priority
