lib/sched/priority.ml: Array List Mcmap_hardening
