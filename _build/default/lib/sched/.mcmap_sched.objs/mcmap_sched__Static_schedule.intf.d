lib/sched/static_schedule.mli: Job Jobset
