module Happ = Mcmap_hardening.Happ

type order = Rate_monotonic | Criticality_first

let assign ?(order = Rate_monotonic) happ =
  let keys = ref [] in
  for gi = Happ.n_graphs happ - 1 downto 0 do
    let hg = Happ.graph happ gi in
    let period = Happ.period hg in
    let crit_class =
      match order with
      | Rate_monotonic -> 0
      | Criticality_first -> if Happ.graph_droppable happ gi then 1 else 0
    in
    (* Depth within the hardened DAG, from the stored topological order. *)
    let n = Array.length hg.Happ.tasks in
    let depth = Array.make n 0 in
    Array.iter
      (fun v ->
        Array.iter
          (fun (p, _) -> depth.(v) <- max depth.(v) (depth.(p) + 1))
          hg.Happ.preds.(v))
      hg.Happ.topo;
    for ti = n - 1 downto 0 do
      keys := ((crit_class, period, depth.(ti), gi, ti), (gi, ti)) :: !keys
    done
  done;
  let sorted = List.sort compare !keys in
  let prio =
    Array.init (Happ.n_graphs happ) (fun gi ->
        Array.make (Array.length (Happ.graph happ gi).Happ.tasks) 0) in
  List.iteri (fun rank (_, (gi, ti)) -> prio.(gi).(ti) <- rank) sorted;
  prio
