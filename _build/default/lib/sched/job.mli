(** Job instances: one activation of a hardened task inside the
    hyperperiod. The analysis and the simulator both operate on jobs. *)

type t = {
  id : int;  (** dense global job id *)
  graph : int;  (** hardened graph index *)
  task : int;  (** hardened task id within the graph *)
  instance : int;  (** activation number within the hyperperiod *)
  release : int;  (** absolute release time *)
  abs_deadline : int;  (** release + graph deadline *)
  proc : int;
  priority : int;  (** smaller = more urgent *)
  bcet : int;  (** nominal best-case execution time *)
  wcet : int;  (** nominal worst-case execution time *)
  critical_wcet : int;
      (** Eq. (1)-style bound (= wcet unless rollback-hardened) *)
  reexec_k : int;  (** maximum rollbacks *)
  recovery : int;  (** execution time of one rollback (0 if none) *)
  passive : bool;  (** passive spare *)
  voter : bool;
  origin : int;  (** original task id in the source graph *)
  droppable : bool;  (** graph is droppable (could enter T_d) *)
  in_dropped_set : bool;  (** graph is in the plan's T_d *)
}

val response : t -> finish:int -> int
(** Response time relative to the job's release. *)

val pp : Format.formatter -> t -> unit
