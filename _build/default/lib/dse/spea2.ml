module Pareto = Mcmap_util.Pareto
module Prng = Mcmap_util.Prng

type 'a individual = {
  payload : 'a;
  objectives : float array;
  violation : float;
  mutable fitness : float;
}

let make_individual ~payload ~objectives ~violation =
  { payload; objectives; violation; fitness = infinity }

let dominates a b =
  if a.violation = 0. && b.violation > 0. then true
  else if a.violation > 0. && b.violation = 0. then false
  else if a.violation > 0. (* both infeasible *) then
    a.violation < b.violation
  else Pareto.dominates a.objectives b.objectives

let distance a b =
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      let d = x -. b.objectives.(i) in
      acc := !acc +. (d *. d))
    a.objectives;
  sqrt !acc

(* Distances to all other individuals, ascending. *)
let sorted_distances pop i =
  let n = Array.length pop in
  let d = Array.make (n - 1) 0. in
  let k = ref 0 in
  for j = 0 to n - 1 do
    if j <> i then begin
      d.(!k) <- distance pop.(i) pop.(j);
      incr k
    end
  done;
  Array.sort compare d;
  d

let assign_fitness pop =
  let n = Array.length pop in
  if n = 0 then ()
  else begin
    let strength = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && dominates pop.(i) pop.(j) then
          strength.(i) <- strength.(i) + 1
      done
    done;
    let k = max 1 (int_of_float (sqrt (float_of_int n))) in
    for i = 0 to n - 1 do
      let raw = ref 0 in
      for j = 0 to n - 1 do
        if i <> j && dominates pop.(j) pop.(i) then raw := !raw + strength.(j)
      done;
      let density =
        if n = 1 then 0.
        else begin
          let d = sorted_distances pop i in
          let sigma = d.(min (k - 1) (Array.length d - 1)) in
          1. /. (sigma +. 2.)
        end in
      pop.(i).fitness <- float_of_int !raw +. density
    done
  end

let environmental_selection ~size pop =
  let n = Array.length pop in
  if n <= size then Array.copy pop
  else begin
    let non_dominated =
      Array.of_list
        (List.filter (fun ind -> ind.fitness < 1.) (Array.to_list pop)) in
    if Array.length non_dominated <= size then begin
      (* fill up with the best dominated individuals *)
      let sorted = Array.copy pop in
      Array.sort (fun a b -> compare a.fitness b.fitness) sorted;
      Array.sub sorted 0 size
    end
    else begin
      (* truncate by iteratively removing the most crowded individual *)
      let alive = Array.make (Array.length non_dominated) true in
      let count = ref (Array.length non_dominated) in
      while !count > size do
        (* the individual with lexicographically smallest distance
           vector to its nearest alive neighbours is removed *)
        let best = ref (-1) in
        let best_key = ref [||] in
        Array.iteri
          (fun i a ->
            if a then begin
              let ds = ref [] in
              Array.iteri
                (fun j b ->
                  if b && j <> i then
                    ds := distance non_dominated.(i) non_dominated.(j)
                          :: !ds)
                alive;
              let key = Array.of_list (List.sort compare !ds) in
              if !best < 0 || key < !best_key then begin
                best := i;
                best_key := key
              end
            end)
          alive;
        alive.(!best) <- false;
        decr count
      done;
      let out = ref [] in
      Array.iteri
        (fun i a -> if a then out := non_dominated.(i) :: !out)
        alive;
      Array.of_list (List.rev !out)
    end
  end

let binary_tournament rng pop =
  let a = pop.(Prng.int rng (Array.length pop)) in
  let b = pop.(Prng.int rng (Array.length pop)) in
  if a.fitness <= b.fitness then a else b
