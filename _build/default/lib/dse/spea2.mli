(** SPEA2 (Zitzler et al., the paper's population selector, ref [19])
    with constraint-domination.

    Fitness = raw fitness + density. The {e strength} of an individual
    is the number of individuals it dominates; the {e raw fitness} is
    the sum of the strengths of its dominators (0 = non-dominated); the
    {e density} is [1 / (sigma_k + 2)] with [sigma_k] the distance to
    the k-th nearest neighbour in objective space, [k = sqrt N].
    Environmental selection keeps all non-dominated individuals, fills
    up with the best dominated ones, and truncates an overfull archive
    by iteratively removing the individual with the smallest
    nearest-neighbour distance.

    Constraint-domination: a feasible individual dominates every
    infeasible one; among infeasible individuals the smaller violation
    dominates; among feasible ones Pareto dominance applies. *)

type 'a individual = {
  payload : 'a;
  objectives : float array;
  violation : float;  (** 0 = feasible *)
  mutable fitness : float;  (** assigned by {!assign_fitness}; lower is
                                better *)
}

val make_individual :
  payload:'a -> objectives:float array -> violation:float -> 'a individual

val dominates : 'a individual -> 'a individual -> bool

val assign_fitness : 'a individual array -> unit
(** Compute SPEA2 fitness for the union population, in place. *)

val environmental_selection :
  size:int -> 'a individual array -> 'a individual array
(** Select the next archive of exactly [min size n] individuals
    (requires fitness assigned). *)

val binary_tournament :
  Mcmap_util.Prng.t -> 'a individual array -> 'a individual
(** Mating selection on fitness (lower wins). *)
