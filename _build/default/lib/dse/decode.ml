module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Plan = Mcmap_hardening.Plan
module Technique = Mcmap_hardening.Technique
module Reliability = Mcmap_reliability.Analysis
module Prng = Mcmap_util.Prng

let allocated_procs rng alloc =
  let ids = ref [] in
  Array.iteri (fun i bit -> if bit then ids := i :: !ids) alloc;
  match !ids with
  | [] ->
    (* empty allocation: switch one processor on at random *)
    let p = Prng.int rng (Array.length alloc) in
    alloc.(p) <- true;
    [| p |]
  | l -> Array.of_list (List.rev l)

(* Degrade a technique that needs more simultaneous replicas than there
   are allocated processors. *)
let fit_technique technique ~available =
  let needed = Technique.replica_count technique in
  if needed <= available then technique
  else
    match technique with
    | Technique.No_hardening | Technique.Re_execution _
    | Technique.Checkpointing _ ->
      technique
    | Technique.Active_replication _ ->
      if available >= 2 then Technique.active_replication available
      else Technique.re_execution 1
    | Technique.Passive_replication _ ->
      if available >= 3 then Technique.passive_replication (available - 2)
      else Technique.re_execution 1

let legalise rng allocated p =
  if Array.exists (fun q -> q = p) allocated then p
  else Prng.pick rng allocated

(* Pairwise distinct bindings for a replica set, keeping genome choices
   where possible. *)
let distinct_bindings rng allocated ~wanted candidates =
  let chosen = ref [] in
  let taken p = List.exists (fun q -> q = p) !chosen in
  List.iter
    (fun p ->
      let p = legalise rng allocated p in
      if (not (taken p)) && List.length !chosen < wanted then
        chosen := p :: !chosen)
    candidates;
  (* top up with unused allocated processors, in shuffled order *)
  let pool = Array.copy allocated in
  Prng.shuffle rng pool;
  Array.iter
    (fun p ->
      if (not (taken p)) && List.length !chosen < wanted then
        chosen := p :: !chosen)
    pool;
  Array.of_list (List.rev !chosen)

let decision_of_gene rng allocated (gene : Genome.task_gene) =
  let available = Array.length allocated in
  let technique = fit_technique gene.Genome.technique ~available in
  let wanted = Technique.replica_count technique in
  if wanted > 1 then begin
    let candidates =
      gene.Genome.primary :: Array.to_list gene.Genome.replicas in
    let procs = distinct_bindings rng allocated ~wanted candidates in
    { Plan.technique; primary_proc = procs.(0);
      replica_procs = Array.sub procs 1 (wanted - 1);
      voter_proc = legalise rng allocated gene.Genome.voter }
  end
  else
    { Plan.technique;
      primary_proc = legalise rng allocated gene.Genome.primary;
      replica_procs = [||];
      voter_proc = legalise rng allocated gene.Genome.voter }

(* Randomized reliability repair: strengthen random tasks of violating
   graphs with random techniques until the constraint holds or the
   attempt budget is exhausted. *)
let repair_reliability rng arch apps allocated decisions dropped =
  let budget = ref (3 * Appset.total_tasks apps) in
  let current = ref (Plan.make apps ~decisions ~dropped) in
  let violated () = Reliability.violations arch apps !current in
  let rec loop () =
    match violated () with
    | [] -> ()
    | v :: _ when !budget > 0 ->
      decr budget;
      let gi = v.Reliability.graph in
      let g = Appset.graph apps gi in
      let ti = Prng.int rng (Graph.n_tasks g) in
      let available = Array.length allocated in
      let technique =
        let dice = Prng.float rng 1. in
        if dice < 0.5 || available < 3 then
          Technique.re_execution (Prng.int_in rng 1 3)
        else if dice < 0.8 then
          Technique.active_replication (min 3 available)
        else Technique.passive_replication (min 2 (available - 2)) in
      let technique = fit_technique technique ~available in
      let wanted = Technique.replica_count technique in
      let procs =
        distinct_bindings rng allocated ~wanted
          [ decisions.(gi).(ti).Plan.primary_proc ] in
      decisions.(gi).(ti) <-
        { Plan.technique; primary_proc = procs.(0);
          replica_procs = Array.sub procs 1 (wanted - 1);
          voter_proc = Prng.pick rng allocated };
      current := Plan.make apps ~decisions ~dropped;
      loop ()
    | _ :: _ -> () (* out of budget: leave for the penalty scheme *) in
  loop ();
  !current

let decode rng ?(force_no_dropping = false) arch apps (genome : Genome.t) =
  let alloc = Array.copy genome.Genome.alloc in
  let allocated = allocated_procs rng alloc in
  let decisions =
    Array.mapi
      (fun _gi row -> Array.map (decision_of_gene rng allocated) row)
      genome.Genome.genes in
  let dropped =
    Array.init (Appset.n_graphs apps) (fun gi ->
        (not force_no_dropping)
        && Graph.is_droppable (Appset.graph apps gi)
        && not genome.Genome.nondrop.(gi)) in
  repair_reliability rng arch apps allocated decisions dropped
