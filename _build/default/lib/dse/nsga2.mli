(** NSGA-II environmental selection (Deb et al.) — an alternative to the
    paper's SPEA2 selector, provided for ablation studies.

    Individuals are ranked by fast non-dominated sorting (under the same
    constraint-domination as {!Spea2}); whole fronts are admitted to the
    next archive until one overflows, which is truncated by descending
    crowding distance. Fitness is encoded so that binary tournaments on
    it reproduce NSGA-II's crowded-comparison operator:
    [rank + 1 / (2 + crowding)] (lower is better; extreme points of a
    front have infinite crowding and thus the best fitness of their
    rank). *)

val assign_fitness : 'a Spea2.individual array -> unit
(** In-place, like {!Spea2.assign_fitness}. *)

val environmental_selection :
  size:int -> 'a Spea2.individual array -> 'a Spea2.individual array
(** Select the next archive of [min size n] individuals (requires
    fitness assigned). *)
