(** Genotype-to-phenotype translation with repair (paper §4).

    Decoding restricts every binding to allocated processors, reconciles
    replica sets with the available processors, and applies the paper's
    randomized repair heuristics:

    - bindings on unallocated processors are reassigned to a random
      allocated one;
    - colliding replicas are re-drawn onto pairwise distinct allocated
      processors; if fewer processors are allocated than the technique
      needs, the technique is degraded (replication to re-execution);
    - while a reliability constraint is violated, a random task of the
      violating graph receives a random hardening technique (bounded
      number of attempts — a still-violating candidate is left to the
      penalty scheme).

    Repair draws from the supplied PRNG, so decoding is deterministic
    given the seed. *)

val decode :
  Mcmap_util.Prng.t ->
  ?force_no_dropping:bool ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Genome.t ->
  Mcmap_hardening.Plan.t
(** [force_no_dropping] (default false) ignores the genome's non-drop
    section and keeps every application — the ablation knob behind the
    paper's "with vs without task dropping" comparison (§5.2). *)
