lib/dse/decode.ml: Array Genome List Mcmap_hardening Mcmap_model Mcmap_reliability Mcmap_util
