lib/dse/baselines.ml: Decode Evaluate Genome Mcmap_util Option
