lib/dse/spea2.mli: Mcmap_util
