lib/dse/evaluate.ml: Array List Mcmap_analysis Mcmap_hardening Mcmap_model Mcmap_reliability Mcmap_sched
