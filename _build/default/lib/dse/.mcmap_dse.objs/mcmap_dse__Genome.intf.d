lib/dse/genome.mli: Mcmap_hardening Mcmap_model Mcmap_util
