lib/dse/genome.ml: Array Mcmap_hardening Mcmap_model Mcmap_util
