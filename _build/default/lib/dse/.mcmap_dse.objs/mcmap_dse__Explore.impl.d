lib/dse/explore.ml: Array Evaluate Ga List Mcmap_hardening Mcmap_util
