lib/dse/spea2.ml: Array List Mcmap_util
