lib/dse/ga.mli: Evaluate Genome Mcmap_model
