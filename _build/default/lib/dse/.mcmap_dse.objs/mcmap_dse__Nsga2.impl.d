lib/dse/nsga2.ml: Array Hashtbl List Spea2
