lib/dse/baselines.mli: Evaluate Genome Mcmap_model
