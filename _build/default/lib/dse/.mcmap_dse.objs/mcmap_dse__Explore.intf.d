lib/dse/explore.mli: Ga Mcmap_hardening Mcmap_model
