lib/dse/evaluate.mli: Mcmap_hardening Mcmap_model
