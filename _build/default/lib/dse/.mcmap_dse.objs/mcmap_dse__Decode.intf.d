lib/dse/decode.mli: Genome Mcmap_hardening Mcmap_model Mcmap_util
