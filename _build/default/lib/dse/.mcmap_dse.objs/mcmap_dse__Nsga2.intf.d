lib/dse/nsga2.mli: Spea2
