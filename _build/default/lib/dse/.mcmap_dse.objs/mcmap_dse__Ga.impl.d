lib/dse/ga.ml: Array Decode Evaluate Genome List Mcmap_hardening Mcmap_model Mcmap_util Nsga2 Spea2
