(** Single-objective optimisation baselines for comparing against the
    genetic algorithm of the paper (§4): random search and simulated
    annealing over the same genome encoding, decode/repair and
    evaluation, targeting the primary objective (power) among feasible
    candidates.

    These quantify what the GA's population-based search buys: on equal
    evaluation budgets the GA typically finds cheaper feasible designs
    than annealing, which in turn beats random search. *)

type result = {
  best : (Genome.t * Evaluate.t) option;
      (** cheapest feasible candidate found (None if none was) *)
  evaluations : int;
  feasible : int;
}

val random_search :
  budget:int ->
  seed:int ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  result
(** [budget] independent random candidates. *)

val simulated_annealing :
  budget:int ->
  seed:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  result
(** Metropolis search over genome mutations: an infeasible candidate is
    scored by its constraint violation, a feasible one by its power;
    worse moves are accepted with probability [exp (-delta / T)], [T]
    decaying geometrically from [initial_temperature] (default 1.0) by
    [cooling] (default such that T ends around 1 % of the start). *)
