(* Fast non-dominated sorting and crowding distance, on top of the
   individual representation (and constraint-domination) of Spea2. *)

let fronts pop =
  let n = Array.length pop in
  let dominated_by = Array.make n 0 in
  let dominates_list = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Spea2.dominates pop.(i) pop.(j) then begin
        dominates_list.(i) <- j :: dominates_list.(i);
        dominated_by.(j) <- dominated_by.(j) + 1
      end
    done
  done;
  let rec peel current acc =
    if current = [] then List.rev acc
    else begin
      let next = ref [] in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              dominated_by.(j) <- dominated_by.(j) - 1;
              if dominated_by.(j) = 0 then next := j :: !next)
            dominates_list.(i))
        current;
      peel (List.rev !next) (current :: acc)
    end in
  let first = ref [] in
  for i = n - 1 downto 0 do
    if dominated_by.(i) = 0 then first := i :: !first
  done;
  peel !first []

let crowding pop front =
  let members = Array.of_list front in
  let m = Array.length members in
  let dist = Hashtbl.create m in
  List.iter (fun i -> Hashtbl.replace dist i 0.) front;
  if m > 0 then begin
    let n_obj = Array.length pop.(members.(0)).Spea2.objectives in
    for obj = 0 to n_obj - 1 do
      let sorted = Array.copy members in
      Array.sort
        (fun a b ->
          compare pop.(a).Spea2.objectives.(obj)
            pop.(b).Spea2.objectives.(obj))
        sorted;
      let lo = pop.(sorted.(0)).Spea2.objectives.(obj) in
      let hi = pop.(sorted.(m - 1)).Spea2.objectives.(obj) in
      Hashtbl.replace dist sorted.(0) infinity;
      Hashtbl.replace dist sorted.(m - 1) infinity;
      let range = hi -. lo in
      if range > 0. then
        for k = 1 to m - 2 do
          let prev = pop.(sorted.(k - 1)).Spea2.objectives.(obj) in
          let next = pop.(sorted.(k + 1)).Spea2.objectives.(obj) in
          Hashtbl.replace dist sorted.(k)
            (Hashtbl.find dist sorted.(k) +. ((next -. prev) /. range))
        done
    done
  end;
  dist

let assign_fitness pop =
  List.iteri
    (fun rank front ->
      let dist = crowding pop front in
      List.iter
        (fun i ->
          let c = Hashtbl.find dist i in
          pop.(i).Spea2.fitness <- float_of_int rank +. (1. /. (2. +. c)))
        front)
    (fronts pop)

let environmental_selection ~size pop =
  let n = Array.length pop in
  if n <= size then Array.copy pop
  else begin
    let selected = ref [] and count = ref 0 in
    List.iter
      (fun front ->
        if !count < size then begin
          let room = size - !count in
          if List.length front <= room then begin
            selected := List.rev_append front !selected;
            count := !count + List.length front
          end
          else begin
            (* truncate the overflowing front by descending crowding *)
            let dist = crowding pop front in
            let by_crowding =
              List.sort
                (fun a b ->
                  compare (Hashtbl.find dist b) (Hashtbl.find dist a))
                front in
            let rec take k = function
              | [] -> []
              | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
            in
            selected := List.rev_append (take room by_crowding) !selected;
            count := size
          end
        end)
      (fronts pop);
    Array.of_list (List.rev_map (fun i -> pop.(i)) !selected)
  end
