module Arch = Mcmap_model.Arch
module Appset = Mcmap_model.Appset
module Graph = Mcmap_model.Graph
module Technique = Mcmap_hardening.Technique
module Prng = Mcmap_util.Prng

type task_gene = {
  technique : Technique.t;
  primary : int;
  replicas : int array;
  voter : int;
}

type t = {
  alloc : bool array;
  nondrop : bool array;
  genes : task_gene array array;
}

let random_technique rng ~harden_prob ~n_procs =
  if not (Prng.bernoulli rng harden_prob) then Technique.No_hardening
  else begin
    let dice = Prng.float rng 1. in
    if dice < 0.45 || n_procs < 3 then
      Technique.re_execution (Prng.int_in rng 1 2)
    else if dice < 0.6 then
      Technique.checkpointing ~segments:(Prng.int_in rng 2 4)
        ~k:(Prng.int_in rng 1 2)
    else if dice < 0.85 then Technique.active_replication 3
    else Technique.passive_replication 1
  end

let random_gene rng ~harden_prob ~n_procs =
  let technique = random_technique rng ~harden_prob ~n_procs in
  let extras = Technique.replica_count technique - 1 in
  { technique;
    primary = Prng.int rng n_procs;
    replicas = Array.init extras (fun _ -> Prng.int rng n_procs);
    voter = Prng.int rng n_procs }

let random rng arch apps =
  let n_procs = Arch.n_procs arch in
  let alloc = Array.init n_procs (fun _ -> Prng.bernoulli rng 0.75) in
  let nondrop =
    Array.init (Appset.n_graphs apps) (fun gi ->
        if Graph.is_droppable (Appset.graph apps gi) then
          Prng.bernoulli rng 0.5
        else true) in
  let genes =
    Array.init (Appset.n_graphs apps) (fun gi ->
        let g = Appset.graph apps gi in
        let harden_prob = if Graph.is_droppable g then 0.05 else 0.6 in
        Array.init (Graph.n_tasks g) (fun _ ->
            random_gene rng ~harden_prob ~n_procs)) in
  { alloc; nondrop; genes }

let seeded rng arch apps =
  let n_procs = Arch.n_procs arch in
  let load = Array.make n_procs 0. in
  let least_loaded () =
    let best = ref 0 in
    for p = 1 to n_procs - 1 do
      if load.(p) < load.(!best) then best := p
    done;
    !best in
  (* Graph-sticky placement: keeping a graph's tasks together removes
     communication delays and lets the pay-once interference accounting
     collapse the chain's busy windows; spill to the next least-loaded
     processor when the current one fills up. *)
  let genes =
    Array.init (Appset.n_graphs apps) (fun gi ->
        let g = Appset.graph apps gi in
        let critical = not (Graph.is_droppable g) in
        let period = float_of_int g.Graph.period in
        let home = ref (least_loaded ()) in
        Array.init (Graph.n_tasks g) (fun ti ->
            let task = Graph.task g ti in
            let technique =
              if critical then Technique.re_execution 1
              else Technique.No_hardening in
            let speed p = (Arch.proc arch p).Mcmap_model.Proc.speed in
            let demand p =
              let cycles =
                match technique with
                | Technique.Re_execution k ->
                  (task.Mcmap_model.Task.wcet
                   + task.Mcmap_model.Task.detection_overhead)
                  * (k + 1)
                | Technique.Checkpointing (segments, k) ->
                  Technique.wcet_after_checkpointing
                    ~wcet:task.Mcmap_model.Task.wcet
                    ~detection:task.Mcmap_model.Task.detection_overhead
                    ~segments ~k
                | Technique.No_hardening | Technique.Active_replication _
                | Technique.Passive_replication _ ->
                  task.Mcmap_model.Task.wcet in
              float_of_int cycles *. speed p /. period in
            if load.(!home) +. demand !home > 0.75 then
              home := least_loaded ();
            let p = !home in
            load.(p) <- load.(p) +. demand p;
            { technique; primary = p;
              replicas =
                Array.init
                  (Technique.replica_count technique - 1)
                  (fun _ -> Prng.int rng n_procs);
              voter = Prng.int rng n_procs }))
  in
  let nondrop =
    Array.init (Appset.n_graphs apps) (fun gi ->
        if Graph.is_droppable (Appset.graph apps gi) then Prng.bool rng
        else true) in
  { alloc = Array.make n_procs true; nondrop; genes }

let crossover rng a b =
  let pick_bit x y = if Prng.bool rng then (x, y) else (y, x) in
  let alloc1 = Array.copy a.alloc and alloc2 = Array.copy b.alloc in
  Array.iteri
    (fun i _ ->
      let x, y = pick_bit a.alloc.(i) b.alloc.(i) in
      alloc1.(i) <- x;
      alloc2.(i) <- y)
    a.alloc;
  let nd1 = Array.copy a.nondrop and nd2 = Array.copy b.nondrop in
  Array.iteri
    (fun i _ ->
      let x, y = pick_bit a.nondrop.(i) b.nondrop.(i) in
      nd1.(i) <- x;
      nd2.(i) <- y)
    a.nondrop;
  let g1 = Array.map Array.copy a.genes
  and g2 = Array.map Array.copy b.genes in
  Array.iteri
    (fun gi row ->
      Array.iteri
        (fun ti _ ->
          let x, y = pick_bit a.genes.(gi).(ti) b.genes.(gi).(ti) in
          g1.(gi).(ti) <- x;
          g2.(gi).(ti) <- y)
        row)
    a.genes;
  ({ alloc = alloc1; nondrop = nd1; genes = g1 },
   { alloc = alloc2; nondrop = nd2; genes = g2 })

let mutate rng ?(rate = 0.05) arch apps t =
  let n_procs = Arch.n_procs arch in
  let alloc =
    Array.map
      (fun bit -> if Prng.bernoulli rng rate then not bit else bit)
      t.alloc in
  let nondrop =
    Array.mapi
      (fun gi bit ->
        if Graph.is_droppable (Appset.graph apps gi)
           && Prng.bernoulli rng rate then not bit
        else bit)
      t.nondrop in
  let mutate_gene gi gene =
    if not (Prng.bernoulli rng rate) then gene
    else begin
      let g = Appset.graph apps gi in
      let harden_prob = if Graph.is_droppable g then 0.05 else 0.6 in
      match Prng.int rng 4 with
      | 0 ->
        (* re-roll the technique (and its replica slots) *)
        let technique = random_technique rng ~harden_prob ~n_procs in
        let extras = Technique.replica_count technique - 1 in
        { gene with technique;
          replicas = Array.init extras (fun _ -> Prng.int rng n_procs) }
      | 1 -> { gene with primary = Prng.int rng n_procs }
      | 2 ->
        if Array.length gene.replicas = 0 then
          { gene with primary = Prng.int rng n_procs }
        else begin
          let replicas = Array.copy gene.replicas in
          replicas.(Prng.int rng (Array.length replicas)) <-
            Prng.int rng n_procs;
          { gene with replicas }
        end
      | _ -> { gene with voter = Prng.int rng n_procs }
    end in
  let genes =
    Array.mapi
      (fun gi row -> Array.map (mutate_gene gi) row)
      t.genes in
  { alloc; nondrop; genes }

let equal a b = a = b
