(** The chromosome of the genetic algorithm (paper §4, Fig. 4). Three
    sections:

    + {b allocation} — one bit per processor of the target architecture;
    + {b non-droppable selection} — one bit per application; a set bit
      means the application is never dropped on mode changes (bits of
      non-droppable applications are forced);
    + {b binding/hardening} — per task: the hardening technique (degree
      of re-execution or replication), the bindings of the task, of its
      replicas and of its voter.

    Genomes are plain data; {!Decode} turns them into phenotypes
    ({!Mcmap_hardening.Plan.t}) with repair. *)

type task_gene = {
  technique : Mcmap_hardening.Technique.t;
  primary : int;
  replicas : int array;  (** candidate replica bindings (may be repaired) *)
  voter : int;
}

type t = {
  alloc : bool array;  (** per processor *)
  nondrop : bool array;  (** per graph; meaningful for droppable graphs *)
  genes : task_gene array array;  (** indexed [graph].[task] *)
}

val random :
  Mcmap_util.Prng.t ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  t
(** A random genome: all processors allocated with probability 0.75,
    droppable graphs kept with probability 0.5, critical tasks hardened
    with probability 0.6 (droppable tasks 0.2). *)

val seeded :
  Mcmap_util.Prng.t ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  t
(** A load-balance-seeded genome: every processor allocated, primaries
    placed greedily on the least-loaded processor (accounting for the
    speed factor and the Eq. (1) inflation of the chosen hardening),
    critical tasks hardened with single re-execution, droppable tasks
    unhardened, non-drop bits random. A handful of these in the initial
    population gives the GA a schedulable foothold. *)

val crossover : Mcmap_util.Prng.t -> t -> t -> t * t
(** Uniform crossover, independently per allocation bit, per non-drop
    bit and per task gene. *)

val mutate :
  Mcmap_util.Prng.t ->
  ?rate:float ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  t ->
  t
(** Point mutation: with probability [rate] (default 0.05) per locus,
    flip an allocation bit, toggle a non-drop bit, or re-roll a field of
    a task gene. *)

val equal : t -> t -> bool
