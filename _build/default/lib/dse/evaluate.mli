(** Candidate evaluation: objectives and constraints (paper §2.3, §4).

    Objectives (both as minimisation entries of [objectives]):
    + provisioned power consumption
      [sum_p (stat_p + dyn_p * u_p)] over used processors, with [u_p]
      the certified critical-state utilisation (Eq. (1) WCETs, dropped
      graphs excluded) — the demand the design must provision for, so
      task dropping saves real capacity and power;
    + negated quality of service [- sum_{t not in T_d} sv_t].

    Constraints: reliability (per {!Mcmap_reliability.Analysis}) and
    schedulability under Algorithm 1 ({!Mcmap_analysis.Wcrt}). Violations
    are aggregated into a magnitude used for constraint-domination. *)

type t = {
  plan : Mcmap_hardening.Plan.t;
  power : float;
  service : float;
  schedulable : bool;
  reliable : bool;
  violation : float;  (** 0 when feasible; larger = worse *)
  rescued : bool;
      (** feasible as decoded but infeasible when dropping is disabled —
          the solutions counted by the paper's §5.2 ratio *)
  objectives : float array;  (** [| power; -. service |] *)
}

val feasible : t -> bool

val power_of_plan :
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  float
(** The power objective alone (no scheduling analysis). *)

val evaluate :
  ?check_rescue:bool ->
  ?max_iterations:int ->
  Mcmap_model.Arch.t ->
  Mcmap_model.Appset.t ->
  Mcmap_hardening.Plan.t ->
  t
(** Full evaluation. [check_rescue] (default true) additionally analyses
    the same plan with an empty dropped set to detect dropping-rescued
    candidates; pass [false] to halve analysis cost when the statistic is
    not needed. *)
