module Appset = Mcmap_model.Appset
module Arch = Mcmap_model.Arch
module Graph = Mcmap_model.Graph

type decision = {
  technique : Technique.t;
  primary_proc : int;
  replica_procs : int array;
  voter_proc : int;
}

type t = {
  decisions : decision array array;
  dropped : bool array;
}

let structural_check apps decisions dropped =
  if Array.length decisions <> Appset.n_graphs apps then
    invalid_arg "Plan: decision matrix does not match the application set";
  if Array.length dropped <> Appset.n_graphs apps then
    invalid_arg "Plan: dropped vector does not match the application set";
  Array.iteri
    (fun gi row ->
      let g = Appset.graph apps gi in
      if Array.length row <> Graph.n_tasks g then
        invalid_arg "Plan: decision row does not match the graph";
      if dropped.(gi) && not (Graph.is_droppable g) then
        invalid_arg "Plan: a non-droppable graph is marked dropped";
      Array.iter
        (fun d ->
          let expected = Technique.replica_count d.technique - 1 in
          if Array.length d.replica_procs <> expected then
            invalid_arg "Plan: replica count does not match the technique")
        row)
    decisions

let make apps ~decisions ~dropped =
  structural_check apps decisions dropped;
  { decisions; dropped }

let unhardened ?(proc = 0) apps =
  let decisions =
    Array.init (Appset.n_graphs apps) (fun gi ->
        Array.make
          (Graph.n_tasks (Appset.graph apps gi))
          { technique = Technique.No_hardening;
            primary_proc = proc;
            replica_procs = [||];
            voter_proc = proc }) in
  { decisions; dropped = Array.make (Appset.n_graphs apps) false }

let decision t ~graph ~task = t.decisions.(graph).(task)

let with_decision t ~graph ~task d =
  let decisions = Array.map Array.copy t.decisions in
  decisions.(graph).(task) <- d;
  { t with decisions }

let with_dropped t ~graph flag =
  let dropped = Array.copy t.dropped in
  dropped.(graph) <- flag;
  { t with dropped }

let dropped_graphs t =
  let acc = ref [] in
  for gi = Array.length t.dropped - 1 downto 0 do
    if t.dropped.(gi) then acc := gi :: !acc
  done;
  !acc

let errors arch _apps t =
  let n = Arch.n_procs arch in
  let problems = ref [] in
  let check_range what gi ti p =
    if p < 0 || p >= n then
      problems :=
        Format.asprintf "g%d.t%d: %s processor %d out of range" gi ti what p
        :: !problems in
  Array.iteri
    (fun gi row ->
      Array.iteri
        (fun ti d ->
          check_range "primary" gi ti d.primary_proc;
          Array.iter (check_range "replica" gi ti) d.replica_procs;
          if Technique.needs_voter d.technique then
            check_range "voter" gi ti d.voter_proc;
          (* Replicas only add reliability when placed on distinct PEs. *)
          if Technique.replica_count d.technique > 1 then begin
            let procs = d.primary_proc :: Array.to_list d.replica_procs in
            let sorted = List.sort_uniq compare procs in
            if List.length sorted <> List.length procs then
              problems :=
                Format.asprintf "g%d.t%d: replicas share a processor" gi ti
                :: !problems
          end)
        row)
    t.decisions;
  List.rev !problems

let technique_histogram t =
  let table = Hashtbl.create 8 in
  Array.iter
    (Array.iter (fun d ->
         let count =
           match Hashtbl.find_opt table d.technique with
           | Some c -> c
           | None -> 0 in
         Hashtbl.replace table d.technique (count + 1)))
    t.decisions;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let hardened_share_re_execution t =
  let hardened = ref 0 and reexec = ref 0 in
  Array.iter
    (Array.iter (fun d ->
         match d.technique with
         | Technique.No_hardening -> ()
         | Technique.Re_execution _ ->
           incr hardened;
           incr reexec
         | Technique.Checkpointing _ | Technique.Active_replication _
         | Technique.Passive_replication _ ->
           incr hardened))
    t.decisions;
  Mcmap_util.Stats.ratio_pct !reexec !hardened

let pp ppf t =
  Format.fprintf ppf "@[<v>plan:@,";
  Array.iteri
    (fun gi row ->
      Format.fprintf ppf "  graph %d%s:@," gi
        (if t.dropped.(gi) then " [dropped]" else "");
      Array.iteri
        (fun ti d ->
          Format.fprintf ppf "    t%d -> p%d %a@," ti d.primary_proc
            Technique.pp d.technique)
        row)
    t.decisions;
  Format.fprintf ppf "@]"
