(** Hardening techniques against transient faults (paper §2.2).

    - {b Re-execution}: faults are detected locally at the end of the task
      (cost [dt_v]); the task rolls back and re-runs, up to [k] times.
      Eq. (1): [wcet' = (wcet + dt) * (k + 1)].
    - {b Checkpointing} (the technique of the paper's baseline ref [2],
      Pop et al.): the task saves its state at [n] checkpoints (cost
      [dt_v] each); a fault rolls back only to the last checkpoint, so
      each of up to [k] tolerated faults re-executes one segment:
      [wcet' = wcet + n*dt + k*(ceil(wcet/n) + dt)].
    - {b Active replication}: [n >= 2] replicas always execute on distinct
      processors; a voter (cost [ve_v]) majority-votes their outputs
      ([n = 2] gives detection only).
    - {b Passive replication}: two replicas always execute; [m >= 1] spare
      replicas are instantiated only when the voter observes a mismatch. *)

type t =
  | No_hardening
  | Re_execution of int  (** maximum number [k >= 1] of re-executions *)
  | Checkpointing of int * int
      (** [(n, k)]: [n >= 1] checkpoints, tolerating [k >= 1] faults *)
  | Active_replication of int  (** total number [n >= 2] of replicas *)
  | Passive_replication of int
      (** number [m >= 1] of passive spares (on top of 2 active
          replicas) *)

val re_execution : int -> t
(** @raise Invalid_argument unless [k >= 1]. *)

val checkpointing : segments:int -> k:int -> t
(** @raise Invalid_argument unless [segments >= 1] and [k >= 1]. *)

val active_replication : int -> t
(** @raise Invalid_argument unless [n >= 2]. *)

val passive_replication : int -> t
(** @raise Invalid_argument unless [m >= 1]. *)

val wcet_after_re_execution : wcet:int -> detection:int -> k:int -> int
(** Eq. (1) of the paper: [(wcet + detection) * (k + 1)]. *)

val wcet_after_checkpointing :
  wcet:int -> detection:int -> segments:int -> k:int -> int
(** [wcet + segments*detection + k * (ceil (wcet / segments) + detection)]
    — checkpoint overhead plus [k] single-segment recoveries. *)

val replica_count : t -> int
(** Total simultaneous instances the technique creates: 1 for none and
    re-execution, [n] for active, [2 + m] for passive. *)

val needs_voter : t -> bool

val is_re_execution : t -> bool
(** [true] for both {!Re_execution} and {!Checkpointing} — the rollback
    family whose faults trigger the critical state. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
