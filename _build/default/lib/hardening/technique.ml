type t =
  | No_hardening
  | Re_execution of int
  | Checkpointing of int * int
  | Active_replication of int
  | Passive_replication of int

let re_execution k =
  if k < 1 then invalid_arg "Technique.re_execution: k must be >= 1";
  Re_execution k

let checkpointing ~segments ~k =
  if segments < 1 then
    invalid_arg "Technique.checkpointing: segments must be >= 1";
  if k < 1 then invalid_arg "Technique.checkpointing: k must be >= 1";
  Checkpointing (segments, k)

let active_replication n =
  if n < 2 then invalid_arg "Technique.active_replication: n must be >= 2";
  Active_replication n

let passive_replication m =
  if m < 1 then invalid_arg "Technique.passive_replication: m must be >= 1";
  Passive_replication m

let wcet_after_re_execution ~wcet ~detection ~k = (wcet + detection) * (k + 1)

let wcet_after_checkpointing ~wcet ~detection ~segments ~k =
  wcet + (segments * detection)
  + (k * (Mcmap_util.Mathx.ceil_div wcet segments + detection))

let replica_count = function
  | No_hardening | Re_execution _ | Checkpointing _ -> 1
  | Active_replication n -> n
  | Passive_replication m -> 2 + m

let needs_voter = function
  | No_hardening | Re_execution _ | Checkpointing _ -> false
  | Active_replication _ | Passive_replication _ -> true

let is_re_execution = function
  | Re_execution _ | Checkpointing _ -> true
  | No_hardening | Active_replication _ | Passive_replication _ -> false

let equal a b =
  match a, b with
  | No_hardening, No_hardening -> true
  | Re_execution k1, Re_execution k2 -> k1 = k2
  | Checkpointing (n1, k1), Checkpointing (n2, k2) -> n1 = n2 && k1 = k2
  | Active_replication n1, Active_replication n2 -> n1 = n2
  | Passive_replication m1, Passive_replication m2 -> m1 = m2
  | ( (No_hardening | Re_execution _ | Checkpointing _
      | Active_replication _ | Passive_replication _),
      _ ) ->
    false

let pp ppf = function
  | No_hardening -> Format.pp_print_string ppf "none"
  | Re_execution k -> Format.fprintf ppf "reexec(k=%d)" k
  | Checkpointing (n, k) -> Format.fprintf ppf "checkpoint(n=%d,k=%d)" n k
  | Active_replication n -> Format.fprintf ppf "active(n=%d)" n
  | Passive_replication m -> Format.fprintf ppf "passive(m=%d)" m
