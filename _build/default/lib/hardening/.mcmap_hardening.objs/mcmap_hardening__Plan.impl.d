lib/hardening/plan.ml: Array Format Hashtbl List Mcmap_model Mcmap_util Technique
