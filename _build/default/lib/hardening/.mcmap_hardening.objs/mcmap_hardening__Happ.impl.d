lib/hardening/happ.ml: Array Format List Mcmap_model Mcmap_util Plan Technique
