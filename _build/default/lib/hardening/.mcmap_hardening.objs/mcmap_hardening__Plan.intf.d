lib/hardening/plan.mli: Format Mcmap_model Technique
