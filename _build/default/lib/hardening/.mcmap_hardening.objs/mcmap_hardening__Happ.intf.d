lib/hardening/happ.mli: Format Mcmap_model Plan
