lib/hardening/technique.ml: Format Mcmap_util
