lib/hardening/technique.mli: Format
