(** A hardening/mapping/dropping plan — the decision variables of the
    problem in paper §2.3: a hardening technique per task, the processor
    binding of the task, its replicas and its voter, and the dropped set
    [T_d] of droppable graphs that the scheduler abandons in the critical
    state. *)

type decision = {
  technique : Technique.t;
  primary_proc : int;  (** binding of the task / first replica *)
  replica_procs : int array;
      (** bindings of the remaining replicas, length
          [Technique.replica_count technique - 1]; active replicas first,
          then passive spares *)
  voter_proc : int;  (** binding of the voter; ignored without voter *)
}

type t = private {
  decisions : decision array array;  (** indexed [graph].[task] *)
  dropped : bool array;  (** per graph: member of the dropped set T_d *)
}

val unhardened : ?proc:int -> Mcmap_model.Appset.t -> t
(** Every task unhardened and bound to [proc] (default 0); nothing
    dropped. A convenient starting point for tests and examples. *)

val make :
  Mcmap_model.Appset.t ->
  decisions:decision array array ->
  dropped:bool array ->
  t
(** Structural validation: dimensions match the application set, replica
    array lengths match the technique, only droppable graphs are dropped.
    @raise Invalid_argument otherwise. *)

val decision : t -> graph:int -> task:int -> decision

val with_decision : t -> graph:int -> task:int -> decision -> t
(** Functional update (copies the decision matrix). *)

val with_dropped : t -> graph:int -> bool -> t

val dropped_graphs : t -> int list

val errors : Mcmap_model.Arch.t -> Mcmap_model.Appset.t -> t -> string list
(** Placement errors: out-of-range processors, colliding replicas
    (replicas of one task must sit on pairwise distinct processors).
    Empty list = placement-feasible. *)

val technique_histogram : t -> (Technique.t * int) list
(** How many tasks use each technique shape (parameters erased to their
    canonical representative: k/n/m folded to the constructor with its
    actual value). Sorted by constructor. *)

val hardened_share_re_execution : t -> float
(** Fraction (in %) of hardened tasks whose technique is re-execution —
    the statistic reported in paper §5.2. 0 when nothing is hardened. *)

val pp : Format.formatter -> t -> unit
